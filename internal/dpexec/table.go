package dpexec

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// ---------------------------------------------------------------------------
// Compiled match structures
//
// A table compiles to a precedence-ordered list of entries whose match
// conditions are reduced to three runtime modes (always / exact /
// masked) and whose action bodies are inlined, constant-folded blocks.
// LPM prefixes become precomputed masks; Optional wildcards become
// matchAlways. Entries that can never match (key-count or key-width
// mismatches, where the reference interpreter would panic before the
// control plane's validation existed) are dropped at build time.

const (
	matchAlways uint8 = iota // matches any key
	matchEq                  // key == value (width-sensitive struct equality)
	matchMasked              // key & mask == value & mask (precomputed RHS)
)

type exMatch struct {
	mode   uint8
	value  sym.BV // matchEq
	mask   sym.BV // matchMasked
	mvalue sym.BV // matchMasked: value & mask, precomputed
}

// exEntry is one active table entry: its compiled matches and inlined
// action block. blk == nil is NoAction; trap != "" reproduces bmv2's
// match-time error for entries referencing unknown actions.
type exEntry struct {
	matches []exMatch
	blk     *block
	trap    string
}

// exTable is one compiled table. The trailing fields retain enough
// compile context to rebuild the table incrementally when the control
// plane updates it (Image.WithTarget).
type exTable struct {
	qname     string
	keySlots  []int32
	keyWidths []uint16
	entries   []exEntry
	miss      *block
	missTrap  string

	// index accelerates all-exact tables: key hash -> entry indices in
	// precedence order. Nil for small or non-exact tables.
	index map[uint64][]int32

	hash uint64

	cd  *ast.ControlDecl
	tbl *ast.Table
	env []map[string]binding
}

// Value-set member match modes, mirroring bmv2's three-way member
// classification (exact when the mask is absent or all-ones, wildcard
// when it is zero, masked otherwise).
const (
	vsEq uint8 = iota
	vsAlways
	vsMasked
	vsNever // width-mismatched member: unreachable under config validation
)

type vsMember struct {
	mode   uint8
	value  sym.BV
	mask   sym.BV
	mvalue sym.BV
}

type exVset struct {
	qname   string
	members []vsMember
	hash    uint64
}

// match reports whether key is in the value set, first-true-wins in
// member order like bmv2.
func (v *exVset) match(key sym.BV) bool {
	for i := range v.members {
		m := &v.members[i]
		switch m.mode {
		case vsEq:
			if key == m.value {
				return true
			}
		case vsAlways:
			return true
		case vsMasked:
			if key.W != m.mask.W {
				continue
			}
			if (sym.BV{Hi: key.Hi & m.mask.Hi, Lo: key.Lo & m.mask.Lo, W: key.W}) == m.mvalue {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Builders

// buildExTable compiles one table under cfg. It is the single source of
// table compilation for both the full compile and incremental rebuilds,
// which is what keeps a WithTarget chain hash-identical to Compile.
func buildExTable(cc *compileCtx, img *Image, cfg *controlplane.Config, cd *ast.ControlDecl, tbl *ast.Table, qname string, keySlots []int32, keyWidths []uint16, env []map[string]binding) (*exTable, error) {
	t := &exTable{
		qname:     qname,
		keySlots:  keySlots,
		keyWidths: keyWidths,
		cd:        cd,
		tbl:       tbl,
		env:       env,
	}
	if cfg != nil {
		active, _ := cfg.ActiveEntries(qname)
		for _, e := range active {
			ee, live, err := buildEntry(cc, img, cfg, cd, qname, keyWidths, env, e)
			if err != nil {
				return nil, err
			}
			if live {
				t.entries = append(t.entries, ee)
			}
		}
	}

	// Miss path: the declared default, unless the control plane
	// overrides it with a bound action call.
	name := "NoAction"
	var constParams []sym.BV
	override := false
	if tbl.Default != nil {
		name = tbl.Default.Name
	}
	if cfg != nil {
		if d, ok := cfg.Default(qname); ok {
			name, constParams, override = d.Name, d.Params, true
		}
	}
	if name != "NoAction" {
		act := cd.Action(name)
		switch {
		case act == nil:
			t.missTrap = fmt.Sprintf("table %s default references unknown action %s", qname, name)
		case override:
			blk, err := compileEntryBlock(cc, img, cfg, cd, env, act, constParams)
			if err != nil {
				return nil, err
			}
			t.miss = blk
		default:
			blk, err := compileMissBlock(cc, img, cfg, cd, env, qname, tbl.Default, act)
			if err != nil {
				return nil, err
			}
			t.miss = blk
		}
	}

	t.buildIndex()
	t.hash = t.computeHash()
	return t, nil
}

// buildEntry compiles one active entry. live == false drops entries
// that can never match any key (bmv2 reaches the same outcome via
// struct inequality, or would panic on width mismatches that config
// validation already rejects).
func buildEntry(cc *compileCtx, img *Image, cfg *controlplane.Config, cd *ast.ControlDecl, qname string, keyWidths []uint16, env []map[string]binding, e *controlplane.TableEntry) (exEntry, bool, error) {
	var ee exEntry
	if len(e.Matches) != len(keyWidths) {
		return ee, false, nil
	}
	ee.matches = make([]exMatch, len(e.Matches))
	for i := range e.Matches {
		m := &e.Matches[i]
		kw := keyWidths[i]
		switch m.Kind {
		case controlplane.MatchExact:
			ee.matches[i] = exMatch{mode: matchEq, value: m.Value}
		case controlplane.MatchTernary:
			em, ok := maskedMatch(m.Value, m.Mask)
			if !ok {
				return ee, false, nil
			}
			ee.matches[i] = em
		case controlplane.MatchLPM:
			if m.PrefixLen <= 0 {
				ee.matches[i] = exMatch{mode: matchAlways}
				break
			}
			if kw == 0 || m.Value.W != kw {
				return ee, false, nil
			}
			// Oversized prefixes shift the mask to zero, which matches
			// everything — the same outcome as bmv2's dynamic shift.
			mask := shiftMask(kw, m.PrefixLen)
			em, _ := maskedMatch(m.Value, mask)
			ee.matches[i] = em
		case controlplane.MatchOptional:
			if m.Wildcard {
				ee.matches[i] = exMatch{mode: matchAlways}
			} else {
				ee.matches[i] = exMatch{mode: matchEq, value: m.Value}
			}
		default:
			return ee, false, nil
		}
	}
	if e.Action == "NoAction" {
		return ee, true, nil
	}
	act := cd.Action(e.Action)
	if act == nil {
		ee.trap = fmt.Sprintf("table %s entry references unknown action %s", qname, e.Action)
		return ee, true, nil
	}
	blk, err := compileEntryBlock(cc, img, cfg, cd, env, act, e.Params)
	if err != nil {
		return ee, false, err
	}
	ee.blk = blk
	return ee, true, nil
}

// shiftMask is bmv2's LPM mask: width-kw all-ones shifted left by
// (kw - prefixLen), with oversized shifts collapsing to zero.
func shiftMask(kw uint16, prefixLen int) sym.BV {
	n := int(kw) - prefixLen
	if n < 0 || n >= int(kw) {
		// Prefix longer than the key: bmv2's uint conversion makes the
		// shift oversized, zeroing the mask (which matches everything).
		return sym.BV{W: kw}
	}
	return sym.AllOnes(kw).Shl(uint(n))
}

func maskedMatch(value, mask sym.BV) (exMatch, bool) {
	if value.W != mask.W {
		return exMatch{}, false
	}
	return exMatch{
		mode:   matchMasked,
		mask:   mask,
		mvalue: sym.BV{Hi: value.Hi & mask.Hi, Lo: value.Lo & mask.Lo, W: value.W},
	}, true
}

// compileEntryBlock inlines an action body with every parameter bound
// to a compile-time constant, in the scope environment captured at the
// table's apply site. The block owns its code and constant pool, so
// incremental rebuilds never touch shared image arrays.
func compileEntryBlock(cc *compileCtx, img *Image, cfg *controlplane.Config, cd *ast.ControlDecl, env []map[string]binding, act *ast.Action, params []sym.BV) (*block, error) {
	if len(params) != len(act.Params) {
		return nil, cerr("action %s called with %d args, wants %d", act.Name, len(params), len(act.Params))
	}
	bc := &compiler{
		cc:      cc,
		cfg:     cfg,
		img:     img,
		asm:     newAsm(),
		scopes:  env,
		control: cd,
		inBlock: true,
		trapIdx: make(map[string]int32),
	}
	bc.pushScope()
	for i, p := range act.Params {
		bc.bind(p.Name, binding{kind: bindConst, k: params[i]})
	}
	if err := bc.compileStmt(act.Body); err != nil {
		return nil, err
	}
	return &block{code: bc.asm.code, consts: bc.asm.consts}, nil
}

// compileMissBlock compiles the declared default action: its arguments
// are expressions evaluated at miss time in the apply-site scope
// (dynamic ones spill to the prewalk-allocated default-arg slots), then
// the body inlines like any other action call.
func compileMissBlock(cc *compileCtx, img *Image, cfg *controlplane.Config, cd *ast.ControlDecl, env []map[string]binding, qname string, def *ast.ActionRef, act *ast.Action) (*block, error) {
	bc := &compiler{
		cc:      cc,
		cfg:     cfg,
		img:     img,
		asm:     newAsm(),
		scopes:  env,
		control: cd,
		inBlock: true,
		trapIdx: make(map[string]int32),
	}
	args := make([]argVal, len(def.Args))
	for i, aE := range def.Args {
		v, err := bc.expr(aE)
		if err != nil {
			return nil, err
		}
		if v.c {
			args[i] = argVal{c: true, k: v.k}
			continue
		}
		slot, ok := cc.slot(argKey("default:"+qname, i))
		if !ok {
			return nil, cerr("internal: default arg slot for %s not pre-allocated", qname)
		}
		bc.asm.emit(opStore, slot, 0, 0)
		args[i] = argVal{slot: slot}
	}
	if err := bc.inlineAction(act, args, "default:"+qname); err != nil {
		return nil, err
	}
	return &block{code: bc.asm.code, consts: bc.asm.consts}, nil
}

// buildVset compiles one parser value set under cfg.
func buildVset(qname string, cfg *controlplane.Config) *exVset {
	v := &exVset{qname: qname}
	if cfg != nil {
		for _, mem := range cfg.ValueSet(qname) {
			switch {
			case mem.Mask.W == 0 || mem.Mask.IsAllOnes():
				v.members = append(v.members, vsMember{mode: vsEq, value: mem.Value})
			case mem.Mask.IsZero():
				v.members = append(v.members, vsMember{mode: vsAlways})
			case mem.Value.W != mem.Mask.W:
				v.members = append(v.members, vsMember{mode: vsNever})
			default:
				v.members = append(v.members, vsMember{
					mode:   vsMasked,
					value:  mem.Value,
					mask:   mem.Mask,
					mvalue: sym.BV{Hi: mem.Value.Hi & mem.Mask.Hi, Lo: mem.Value.Lo & mem.Mask.Lo, W: mem.Value.W},
				})
			}
		}
	}
	v.hash = v.computeHash()
	return v
}

// buildIndex builds the exact-match accelerator when the table is big
// enough to benefit and every entry matches exactly on every key. The
// probe re-verifies with entryMatches, so the index is semantically
// transparent.
func (t *exTable) buildIndex() {
	t.index = nil
	if len(t.entries) < 4 {
		return
	}
	for i := range t.entries {
		for j := range t.entries[i].matches {
			if t.entries[i].matches[j].mode != matchEq {
				return
			}
		}
	}
	idx := make(map[uint64][]int32, len(t.entries))
	for i := range t.entries {
		h := fnvOffset
		for j := range t.entries[i].matches {
			h = mixBV(h, t.entries[i].matches[j].value)
		}
		idx[h] = append(idx[h], int32(i))
	}
	t.index = idx
}

// ---------------------------------------------------------------------------
// Content hashing
//
// FNV-1a-style folding over every semantically relevant field. The
// image hash is the fold of the configuration-independent code hash
// with each table/value-set/register hash in side-table order; the
// index map is derived state and deliberately excluded.

const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * uint(i))) & 0xff
		h *= fnvPrime
	}
	return h
}

func mixBV(h uint64, v sym.BV) uint64 {
	h = mix(h, v.Hi)
	h = mix(h, v.Lo)
	return mix(h, uint64(v.W))
}

func mixStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix(h, uint64(len(s)))
}

func mixCode(h uint64, code []instr) uint64 {
	h = mix(h, uint64(len(code)))
	for _, in := range code {
		h = mix(h, uint64(in.op))
		h = mix(h, uint64(uint32(in.a)))
		h = mix(h, uint64(uint32(in.b)))
		h = mix(h, uint64(uint32(in.c)))
	}
	return h
}

func hashBlock(h uint64, b *block) uint64 {
	if b == nil {
		return mix(h, 0)
	}
	h = mix(h, 1)
	h = mixCode(h, b.code)
	h = mix(h, uint64(len(b.consts)))
	for _, v := range b.consts {
		h = mixBV(h, v)
	}
	return h
}

func (t *exTable) computeHash() uint64 {
	h := fnvOffset
	h = mixStr(h, t.qname)
	for _, s := range t.keySlots {
		h = mix(h, uint64(uint32(s)))
	}
	for _, w := range t.keyWidths {
		h = mix(h, uint64(w))
	}
	h = mix(h, uint64(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		h = mix(h, uint64(len(e.matches)))
		for j := range e.matches {
			m := &e.matches[j]
			h = mix(h, uint64(m.mode))
			h = mixBV(h, m.value)
			h = mixBV(h, m.mask)
			h = mixBV(h, m.mvalue)
		}
		h = hashBlock(h, e.blk)
		h = mixStr(h, e.trap)
	}
	h = hashBlock(h, t.miss)
	h = mixStr(h, t.missTrap)
	return h
}

func (v *exVset) computeHash() uint64 {
	h := fnvOffset
	h = mixStr(h, v.qname)
	h = mix(h, uint64(len(v.members)))
	for i := range v.members {
		m := &v.members[i]
		h = mix(h, uint64(m.mode))
		h = mixBV(h, m.value)
		h = mixBV(h, m.mask)
		h = mixBV(h, m.mvalue)
	}
	return h
}

// hashCode folds every configuration-independent image field: code,
// constants, slot layout, extract and deparse plans, environment and
// result slots, and trap messages.
func (img *Image) hashCode() uint64 {
	h := fnvOffset
	h = mixCode(h, img.code)
	h = mix(h, uint64(len(img.consts)))
	for _, v := range img.consts {
		h = mixBV(h, v)
	}
	h = mix(h, uint64(len(img.slotInit)))
	for _, v := range img.slotInit {
		h = mixBV(h, v)
	}
	h = mix(h, uint64(len(img.extracts)))
	for i := range img.extracts {
		d := &img.extracts[i]
		h = mix(h, uint64(len(d.fields)))
		for _, f := range d.fields {
			h = mix(h, uint64(uint32(f.slot)))
			h = mix(h, uint64(f.w))
		}
		h = mix(h, uint64(uint32(d.validSlot)))
		if d.inParser {
			h = mix(h, 1)
		} else {
			h = mix(h, 0)
		}
	}
	h = mix(h, uint64(len(img.deparse)))
	for i := range img.deparse {
		dh := &img.deparse[i]
		h = mix(h, uint64(uint32(dh.validSlot)))
		h = mix(h, uint64(len(dh.fields)))
		for _, f := range dh.fields {
			h = mix(h, uint64(uint32(f.slot)))
			h = mix(h, uint64(f.w))
		}
	}
	h = mix(h, uint64(len(img.portSlots)))
	for _, s := range img.portSlots {
		h = mix(h, uint64(uint32(s)))
	}
	h = mix(h, uint64(len(img.lenSlots)))
	for _, s := range img.lenSlots {
		h = mix(h, uint64(uint32(s)))
	}
	h = mix(h, uint64(uint32(img.dropSlot)))
	h = mix(h, uint64(uint32(img.egressSlot)))
	h = mix(h, uint64(uint32(img.mcastSlot)))
	h = mix(h, uint64(len(img.traps)))
	for _, t := range img.traps {
		h = mixStr(h, t)
	}
	return h
}

// rehash recomputes the full image hash from the cached code hash and
// the side tables.
func (img *Image) rehash() {
	h := img.codeHash
	for _, t := range img.tables {
		h = mix(h, t.hash)
	}
	for _, v := range img.vsets {
		h = mix(h, v.hash)
	}
	for _, r := range img.regs {
		h = mixStr(h, r.qname)
		h = mix(h, uint64(r.size))
		h = mix(h, uint64(r.width))
		h = mixBV(h, r.fill)
	}
	img.hash = h
}

// ---------------------------------------------------------------------------
// Incremental rebuild

// WithTarget derives a new image reflecting cfg for one updated target
// (a table, value set, or register qualified name), rebuilding only
// that side table. Targets absent from the image — for example tables
// pruned out of a specialized program — return the receiver unchanged.
// The receiver is never mutated.
//
// The invariant the engine's torture suite pins: a chain of WithTarget
// rebuilds hashes identically to a from-scratch Compile against the
// same final configuration.
func (img *Image) WithTarget(cfg *controlplane.Config, target string) (ni *Image, err error) {
	defer func() {
		if r := recover(); r != nil {
			ni, err = nil, cerr("rebuild panic: %v", r)
		}
	}()
	if ti, ok := img.tableIdx[target]; ok {
		cp := *img
		cp.tables = make([]*exTable, len(img.tables))
		copy(cp.tables, img.tables)
		old := img.tables[ti]
		nt, err := buildExTable(img.cc, &cp, cfg, old.cd, old.tbl, old.qname, old.keySlots, old.keyWidths, old.env)
		if err != nil {
			return nil, err
		}
		cp.tables[ti] = nt
		cp.rehash()
		return &cp, nil
	}
	if vi, ok := img.vsetIdx[target]; ok {
		cp := *img
		cp.vsets = make([]*exVset, len(img.vsets))
		copy(cp.vsets, img.vsets)
		cp.vsets[vi] = buildVset(target, cfg)
		cp.rehash()
		return &cp, nil
	}
	if ri, ok := img.regIdx[target]; ok {
		cp := *img
		cp.regs = append([]regTemplate(nil), img.regs...)
		rt := cp.regs[ri]
		fill := sym.BV{W: rt.width}
		if cfg != nil {
			if f, got := cfg.RegisterFill(target); got {
				fill = f
			}
		}
		rt.fill = fill
		cp.regs[ri] = rt
		cp.rehash()
		return &cp, nil
	}
	return img, nil
}
