package dpexec_test

import (
	"sync"
	"testing"

	"repro/internal/bmv2"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dpexec"
	"repro/internal/fuzz"
	"repro/internal/progs"
)

// fuzzEngines caches one loaded engine per catalog program. Only the
// immutable analysis products (Prog, Info, An) are shared across fuzz
// iterations; every iteration builds its own private Config.
var (
	fuzzMu      sync.Mutex
	fuzzEngines = map[string]*core.Specializer{}
)

func fuzzLoad(name string) (*core.Specializer, error) {
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	if s, ok := fuzzEngines[name]; ok {
		return s, nil
	}
	p, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	s, err := p.Load()
	if err != nil {
		return nil, err
	}
	fuzzEngines[name] = s
	return s, nil
}

// FuzzDpexecVsBmv2 is the packet-level differential fuzz target: a
// random packet executed after a random churn prefix must produce the
// same verdict and output frame on the bytecode executor as on the
// reference interpreter, packet for packet. The corpus seeds one entry
// per catalog program so coverage starts from every parser/table shape
// in the evaluation set.
func FuzzDpexecVsBmv2(f *testing.F) {
	catalog := progs.Catalog()
	names := make([]string, len(catalog))
	for i, p := range catalog {
		names[i] = p.Name
		// A plausible ethernet+IPv4 frame plus a short junk frame, per
		// program, at varying churn depths.
		frame := []byte{
			0x02, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
			0x08, 0x00,
			0x45, 0x00, 0x00, 0x1c, 0x00, 0x01, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
			0x0a, 0x00, 0x00, byte(i), 0x0a, 0x00, 0x01, byte(i),
			0x12, 0x34, 0x56, 0x78, 0x00, 0x08, 0x00, 0x00,
		}
		f.Add(i, uint64(i)*0x9e37+1, uint8(i*3), uint16(i), frame)
		f.Add(i, uint64(i)+7, uint8(0), uint16(511), []byte{0xde, 0xad})
	}

	f.Fuzz(func(t *testing.T, progIdx int, churnSeed uint64, churnLen uint8, port uint16, data []byte) {
		name := names[((progIdx%len(names))+len(names))%len(names)]
		s, err := fuzzLoad(name)
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		if len(data) > 512 {
			data = data[:512]
		}

		// Private config: a churn prefix of generator updates (valid by
		// construction; the few the config still rejects are skipped).
		cfg := controlplane.NewConfig(s.An)
		stream, err := fuzz.New(s.An, churnSeed).Stream(int(churnLen % 48))
		if err != nil {
			t.Skipf("stream: %v", err)
		}
		for _, u := range stream {
			_ = cfg.Apply(u)
		}

		img, err := dpexec.Compile(s.Prog, s.Info, cfg)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		want, err1 := bmv2.New(s.Prog, s.Info, cfg).Run(bmv2.Packet{Data: data, IngressPort: port})
		got, err2 := dpexec.NewMachine().Run(img, data, port)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s packet %x port %d: error divergence: bmv2 %v vs dpexec %v",
				name, data, port, err1, err2)
		}
		if err1 != nil {
			return
		}
		if !got.Equal(dpexec.Result{Dropped: want.Dropped, EgressPort: want.EgressPort,
			McastGrp: want.McastGrp, Emitted: want.Emitted}) {
			t.Fatalf("%s packet %x port %d:\nbmv2:   %+v\ndpexec: %+v", name, data, port, want, got)
		}
	})
}
