package dpexec

import (
	"fmt"
	"strconv"

	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// compileCtx is the slot layout and AST context shared by an image and
// every incremental rebuild derived from it. It is immutable after the
// full compile: the prewalk pass pre-allocates every slot any action
// body could need, so entry-block compilation (full or incremental)
// only ever looks slots up. That invariant is what makes a WithTarget
// chain hash-identical to a from-scratch Compile.
type compileCtx struct {
	prog     *ast.Program
	info     *typecheck.Info
	slots    map[string]int32
	slotInit []sym.BV
}

func (cc *compileCtx) alloc(path string, init sym.BV) int32 {
	if s, ok := cc.slots[path]; ok {
		return s
	}
	s := int32(len(cc.slotInit))
	cc.slots[path] = s
	cc.slotInit = append(cc.slotInit, init)
	return s
}

func (cc *compileCtx) slot(path string) (int32, bool) {
	s, ok := cc.slots[path]
	return s, ok
}

// binding resolves an identifier during compilation.
const (
	bindPath     uint8 = iota // assignable store path (params, locals)
	bindVal                   // read-only slot (dynamic action argument)
	bindConst                 // compile-time constant (bound action param)
	bindRegister              // register array index
	bindPacket                // the packet parameter
)

type binding struct {
	kind uint8
	path string
	k    sym.BV
	reg  int32
	slot int32 // bindVal: the spill slot holding the argument
}

// cv is a compiled expression: either a compile-time constant (no code
// emitted) or a dynamic value left on the stack by emitted code.
type cv struct {
	c bool
	k sym.BV
}

func constCV(k sym.BV) cv { return cv{c: true, k: k} }

var dyn = cv{}

// argVal is one compiled action argument: a constant or a slot holding
// the evaluated value.
type argVal struct {
	c    bool
	k    sym.BV
	slot int32
}

// asm is one code segment under construction with its constant pool.
type asm struct {
	code   []instr
	consts []sym.BV
	cmap   map[sym.BV]int32
}

func newAsm() *asm { return &asm{cmap: make(map[sym.BV]int32)} }

func (a *asm) emit(op uint8, x, y, z int32) int {
	a.code = append(a.code, instr{op: op, a: x, b: y, c: z})
	return len(a.code) - 1
}

func (a *asm) constIdx(v sym.BV) int32 {
	if i, ok := a.cmap[v]; ok {
		return i
	}
	i := int32(len(a.consts))
	a.consts = append(a.consts, v)
	a.cmap[v] = i
	return i
}

type compiler struct {
	cc      *compileCtx
	cfg     *controlplane.Config
	img     *Image
	asm     *asm
	scopes  []map[string]binding
	control *ast.ControlDecl
	inBlock bool
	exitFix []int // opExit instrs awaiting the control-end pc in .a
	tblFix  []int // opTable instrs awaiting the control-end pc in .c
	trapIdx map[string]int32
}

func cerr(format string, args ...any) error {
	return fmt.Errorf("dpexec: %s", fmt.Sprintf(format, args...))
}

func (c *compiler) pushScope()             { c.scopes = append(c.scopes, make(map[string]binding)) }
func (c *compiler) popScope()              { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *compiler) bind(name string, b binding) { c.scopes[len(c.scopes)-1][name] = b }

func (c *compiler) lookup(name string) (binding, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if b, ok := c.scopes[i][name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

func (c *compiler) widthOf(e ast.Expr) uint16 {
	return uint16(c.cc.info.TypeOf(e).Width)
}

func (c *compiler) trap(msg string) int32 {
	if i, ok := c.trapIdx[msg]; ok {
		return i
	}
	i := int32(len(c.img.traps))
	c.img.traps = append(c.img.traps, msg)
	c.trapIdx[msg] = i
	return i
}

// mat materializes a cv onto the stack (no-op for dynamic values, which
// are already there).
func (c *compiler) mat(v cv) {
	if v.c {
		c.asm.emit(opPushC, c.asm.constIdx(v.k), 0, 0)
	}
}

func (c *compiler) snapshotScopes() []map[string]binding {
	env := make([]map[string]binding, len(c.scopes))
	for i, sc := range c.scopes {
		m := make(map[string]binding, len(sc))
		for k, v := range sc {
			m[k] = v
		}
		env[i] = m
	}
	return env
}

// runParser returns the parser that Run would execute (exactly one
// declared), mirroring bmv2.
func runParser(prog *ast.Program) *ast.ParserDecl {
	if len(prog.Parsers) == 1 {
		return prog.Parsers[0]
	}
	return nil
}

// Compile translates prog under cfg into an executable image. The
// program must have passed typecheck with the supplied info; cfg may be
// nil for the empty configuration. The observable semantics of the
// image are exactly those of bmv2.New(prog, info, cfg).
func Compile(prog *ast.Program, info *typecheck.Info, cfg *controlplane.Config) (img *Image, err error) {
	// sym.BV operations panic on width mismatches that only a
	// non-typechecked program can produce; surface those as errors so
	// fuzzers get a clean failure instead of a crash.
	defer func() {
		if r := recover(); r != nil {
			img, err = nil, cerr("compile panic: %v", r)
		}
	}()

	cc := &compileCtx{prog: prog, info: info, slots: make(map[string]int32)}
	img = &Image{
		cc:        cc,
		tableIdx:  make(map[string]int),
		vsetIdx:   make(map[string]int),
		regIdx:    make(map[string]int),
		dropSlot:  -1,
		egressSlot: -1,
		mcastSlot: -1,
	}
	c := &compiler{
		cc:      cc,
		cfg:     cfg,
		img:     img,
		asm:     newAsm(),
		scopes:  []map[string]binding{make(map[string]binding)},
		trapIdx: make(map[string]int32),
	}

	// 1. Seed parameters, sharing storage by name like the analyzer and
	// bmv2 do.
	var seededNames []string
	seededSet := map[string]bool{}
	seed := func(params []ast.Param) error {
		for _, p := range params {
			t := info.Resolve(p.Type)
			if t.Kind == typecheck.KPacket {
				c.scopes[0][p.Name] = binding{kind: bindPacket}
				continue
			}
			if seededSet[p.Name] {
				continue
			}
			seededSet[p.Name] = true
			seededNames = append(seededNames, p.Name)
			c.scopes[0][p.Name] = binding{kind: bindPath, path: p.Name}
			if err := c.seedRoot(p.Name, t); err != nil {
				return err
			}
		}
		return nil
	}
	for _, pd := range prog.Parsers {
		if err := seed(pd.Params); err != nil {
			return nil, err
		}
	}
	for _, cd := range prog.Controls {
		if err := seed(cd.Params); err != nil {
			return nil, err
		}
	}

	// 2. Prewalk: allocate every local/temp slot any statement could
	// need, in pure AST order, so later compilation (including
	// incremental entry-block rebuilds) never allocates.
	c.prewalk()

	// 3. Environment inputs.
	for _, name := range seededNames {
		if s, ok := cc.slot(name + ".ingress_port"); ok {
			img.portSlots = append(img.portSlots, s)
		}
		if s, ok := cc.slot(name + ".packet_length"); ok {
			img.lenSlots = append(img.lenSlots, s)
		}
	}

	// 4. Main code: parser FSM, then each control.
	var acceptJ = -1
	if pd := runParser(prog); pd != nil {
		if acceptJ, err = c.compileParser(pd); err != nil {
			return nil, err
		}
	}
	if acceptJ >= 0 {
		c.asm.code[acceptJ].a = int32(len(c.asm.code))
	}
	for _, cd := range prog.Controls {
		if err := c.compileControl(cd); err != nil {
			return nil, err
		}
	}

	img.code = c.asm.code
	img.consts = c.asm.consts
	img.slotInit = cc.slotInit

	// 5. Result extraction and the deparse plan.
	std := stdRoot(prog, info)
	if s, ok := cc.slot(std + ".drop"); ok {
		img.dropSlot = s
	}
	if s, ok := cc.slot(std + ".egress_port"); ok {
		img.egressSlot = s
	}
	if s, ok := cc.slot(std + ".mcast_grp"); ok {
		img.mcastSlot = s
	}
	img.deparse = buildDeparse(cc)

	// 6. Content hashes.
	img.codeHash = img.hashCode()
	img.rehash()
	return img, nil
}

// seedRoot mirrors bmv2's store seeding for one pipeline parameter.
func (c *compiler) seedRoot(path string, t typecheck.T) error {
	cc := c.cc
	switch t.Kind {
	case typecheck.KHeader:
		h := cc.prog.Header(t.Name)
		cc.alloc(path+".$valid", sym.Bool(false))
		for _, f := range h.Fields {
			ft := cc.info.Resolve(f.Type)
			cc.alloc(path+"."+f.Name, sym.BV{W: uint16(ft.Width)})
		}
		return nil
	case typecheck.KStruct:
		s := cc.prog.Struct(t.Name)
		for _, f := range s.Fields {
			ft := cc.info.Resolve(f.Type)
			fp := path + "." + f.Name
			switch ft.Kind {
			case typecheck.KBits:
				cc.alloc(fp, sym.BV{W: uint16(ft.Width)})
			case typecheck.KBool:
				cc.alloc(fp, sym.Bool(false))
			case typecheck.KHeader, typecheck.KStruct:
				if err := c.seedRoot(fp, ft); err != nil {
					return err
				}
			default:
				return cerr("unsupported field type at %s", fp)
			}
		}
		return nil
	case typecheck.KBits:
		cc.alloc(path, sym.BV{W: uint16(t.Width)})
		return nil
	case typecheck.KBool:
		cc.alloc(path, sym.Bool(false))
		return nil
	default:
		return cerr("unsupported parameter type %s", t)
	}
}

// stdRoot mirrors bmv2's standard-metadata parameter resolution.
func stdRoot(prog *ast.Program, info *typecheck.Info) string {
	check := func(params []ast.Param) string {
		for _, p := range params {
			t := info.Resolve(p.Type)
			if t.Kind == typecheck.KStruct && t.Name == "standard_metadata_t" {
				return p.Name
			}
		}
		return ""
	}
	for _, pd := range prog.Parsers {
		if n := check(pd.Params); n != "" {
			return n
		}
	}
	for _, cd := range prog.Controls {
		if n := check(cd.Params); n != "" {
			return n
		}
	}
	return "std"
}

// buildDeparse precomputes the deparse plan with bmv2's traversal:
// parser-then-control parameter order, first occurrence of each name,
// every header once, skipping standard metadata.
func buildDeparse(cc *compileCtx) []deparseHeader {
	var plan []deparseHeader
	emitted := map[string]bool{}
	var emitRoot func(path string, t typecheck.T)
	emitRoot = func(path string, t typecheck.T) {
		switch t.Kind {
		case typecheck.KHeader:
			if emitted[path] {
				return
			}
			emitted[path] = true
			vs, ok := cc.slot(path + ".$valid")
			if !ok {
				return
			}
			h := cc.prog.Header(t.Name)
			dh := deparseHeader{validSlot: vs}
			for _, f := range h.Fields {
				ft := cc.info.Resolve(f.Type)
				fs, ok := cc.slot(path + "." + f.Name)
				if !ok {
					return
				}
				dh.fields = append(dh.fields, fieldRef{slot: fs, w: uint16(ft.Width)})
			}
			plan = append(plan, dh)
		case typecheck.KStruct:
			if t.Name == "standard_metadata_t" {
				return
			}
			s := cc.prog.Struct(t.Name)
			for _, f := range s.Fields {
				ft := cc.info.Resolve(f.Type)
				if ft.Kind == typecheck.KHeader || ft.Kind == typecheck.KStruct {
					emitRoot(path+"."+f.Name, ft)
				}
			}
		}
	}
	seen := map[string]bool{}
	var roots []ast.Param
	for _, pd := range cc.prog.Parsers {
		roots = append(roots, pd.Params...)
	}
	for _, cd := range cc.prog.Controls {
		roots = append(roots, cd.Params...)
	}
	for _, p := range roots {
		if seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		emitRoot(p.Name, cc.info.Resolve(p.Type))
	}
	return plan
}

// ---------------------------------------------------------------------------
// Prewalk: deterministic slot pre-allocation

func localKey(v *ast.VarDecl) string { return "$local:" + v.Name + ":" + v.Pos().String() }

func argKey(pos string, i int) string { return "$arg:" + pos + ":" + strconv.Itoa(i) }

func chkKey(pos string) string { return "$chk:" + pos }

// prewalk allocates slots for every local variable, dynamic action
// argument, checksum temporary, mark_to_drop flag and setValid target
// in the program — independent of the configuration, in declaration
// order. Prewalk failures are deliberately silent: anything it cannot
// resolve will produce a proper compile error when (and if) the main
// pass reaches it.
func (c *compiler) prewalk() {
	w := &prewalker{c: c}
	if pd := runParser(c.cc.prog); pd != nil {
		for _, st := range pd.States {
			w.push()
			for _, s := range st.Stmts {
				w.stmt(s)
			}
			for _, e := range st.Trans.Select {
				w.expr(e)
			}
			for _, cs := range st.Trans.Cases {
				for _, ks := range cs.Keysets {
					if ks.Value != nil {
						w.expr(ks.Value)
					}
					if ks.Mask != nil {
						w.expr(ks.Mask)
					}
				}
			}
			w.pop()
		}
	}
	for _, cd := range c.cc.prog.Controls {
		w.push()
		for _, v := range cd.Locals {
			w.stmt(v)
		}
		w.stmt(cd.Apply)
		for _, act := range cd.Actions {
			w.push()
			w.stmt(act.Body)
			w.pop()
		}
		for _, tbl := range cd.Tables {
			for _, k := range tbl.Keys {
				w.expr(k.Expr)
			}
			if tbl.Default != nil {
				q := cd.Name + "." + tbl.Name
				for i, a := range tbl.Default.Args {
					w.expr(a)
					c.cc.alloc(argKey("default:"+q, i), sym.BV{})
				}
			}
		}
		w.pop()
	}
}

type prewalker struct {
	c      *compiler
	frames []map[string]string // local name -> slot path
}

func (w *prewalker) push() { w.frames = append(w.frames, map[string]string{}) }
func (w *prewalker) pop()  { w.frames = w.frames[:len(w.frames)-1] }

// path resolves an lvalue textually for drop/valid slot pre-allocation;
// empty string when unresolvable (main compile will report it).
func (w *prewalker) path(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		for i := len(w.frames) - 1; i >= 0; i-- {
			if p, ok := w.frames[i][e.Name]; ok {
				return p
			}
		}
		if b, ok := w.c.scopes[0][e.Name]; ok && b.kind == bindPath {
			return b.path
		}
		return ""
	case *ast.Member:
		base := w.path(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Name
	default:
		return ""
	}
}

func (w *prewalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.push()
		for _, inner := range s.Stmts {
			w.stmt(inner)
		}
		w.pop()
	case *ast.VarDecl:
		if s.Init != nil {
			w.expr(s.Init)
		}
		key := localKey(s)
		w.c.cc.alloc(key, sym.BV{})
		w.frames[len(w.frames)-1][s.Name] = key
	case *ast.AssignStmt:
		w.expr(s.RHS)
	case *ast.IfStmt:
		w.expr(s.Cond)
		w.stmt(s.Then)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.CallStmt:
		w.call(s.Call)
	}
}

func (w *prewalker) call(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "mark_to_drop":
			if len(call.Args) == 1 {
				if p := w.path(call.Args[0]); p != "" {
					w.c.cc.alloc(p+".drop", sym.BV{})
				}
			}
		case "count":
		default:
			pos := call.Pos().String()
			for i, a := range call.Args {
				w.expr(a)
				w.c.cc.alloc(argKey(pos, i), sym.BV{})
			}
		}
	case *ast.Member:
		switch fun.Name {
		case "setValid", "setInvalid":
			if p := w.path(fun.X); p != "" {
				w.c.cc.alloc(p+".$valid", sym.Bool(false))
			}
		default:
			for _, a := range call.Args {
				w.expr(a)
			}
		}
	}
}

func (w *prewalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "checksum16" {
			w.c.cc.alloc(chkKey(e.Pos().String()), sym.BV{})
		}
		for _, a := range e.Args {
			w.expr(a)
		}
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.TernaryExpr:
		w.expr(e.Cond)
		w.expr(e.Then)
		w.expr(e.Else)
	case *ast.SliceExpr:
		w.expr(e.X)
	case *ast.Member:
		w.expr(e.X)
	}
}
