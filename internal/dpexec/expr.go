package dpexec

import (
	"strconv"

	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// lvalPath resolves an assignable expression to a store path, with
// bmv2's rules: identifiers resolve through scopes, members append.
func (c *compiler) lvalPath(e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.Ident:
		b, ok := c.lookup(e.Name)
		if !ok {
			return "", cerr("unknown identifier %s", e.Name)
		}
		switch b.kind {
		case bindPath:
			return b.path, nil
		case bindConst, bindVal:
			return "", cerr("cannot assign to parameter %s", e.Name)
		default:
			return "", cerr("invalid lvalue %s", e.Name)
		}
	case *ast.Member:
		base, err := c.lvalPath(e.X)
		if err != nil {
			return "", err
		}
		return base + "." + e.Name, nil
	default:
		return "", cerr("invalid lvalue %T", e)
	}
}

// expr compiles an expression: constants fold (no code), dynamic
// values leave exactly one value on the stack.
func (c *compiler) expr(e ast.Expr) (cv, error) {
	a := c.asm
	switch e := e.(type) {
	case *ast.IntLit:
		w := c.cc.info.TypeOf(e).Width
		if w == 0 {
			w = e.Width
		}
		if w == 0 {
			return dyn, cerr("literal with unknown width at %s", e.Pos())
		}
		return constCV(sym.NewBV2(uint16(w), e.Hi, e.Lo)), nil
	case *ast.BoolLit:
		return constCV(sym.Bool(e.Value)), nil
	case *ast.Ident:
		if b, ok := c.lookup(e.Name); ok {
			switch b.kind {
			case bindConst:
				return constCV(b.k), nil
			case bindVal:
				a.emit(opLoad, b.slot, 0, 0)
				return dyn, nil
			case bindPath:
				slot, got := c.cc.slot(b.path)
				if !got {
					return dyn, cerr("%s has no value", e.Name)
				}
				a.emit(opLoad, slot, 0, 0)
				return dyn, nil
			default:
				return dyn, cerr("%s has no value", e.Name)
			}
		}
		if kv, ok := c.cc.info.Consts[e.Name]; ok {
			return constCV(sym.NewBV2(uint16(kv.Width), kv.Hi, kv.Lo)), nil
		}
		return dyn, cerr("unknown identifier %s", e.Name)
	case *ast.Member:
		path, err := c.lvalPath(e)
		if err != nil {
			return dyn, err
		}
		slot, ok := c.cc.slot(path)
		if !ok {
			return dyn, cerr("unknown field %s", path)
		}
		a.emit(opLoad, slot, 0, 0)
		return dyn, nil
	case *ast.CallExpr:
		return c.exprCall(e)
	case *ast.UnaryExpr:
		x, err := c.expr(e.X)
		if err != nil {
			return dyn, err
		}
		switch e.Op {
		case "!", "~":
			if x.c {
				return constCV(x.k.Not()), nil
			}
			a.emit(opNot, 0, 0, 0)
			return dyn, nil
		case "-":
			if x.c {
				return constCV(sym.BV{W: x.k.W}.Sub(x.k)), nil
			}
			a.emit(opNeg, 0, 0, 0)
			return dyn, nil
		}
		return dyn, cerr("unknown unary %s", e.Op)
	case *ast.BinaryExpr:
		return c.exprBinary(e)
	case *ast.TernaryExpr:
		cond, err := c.expr(e.Cond)
		if err != nil {
			return dyn, err
		}
		if cond.c {
			if cond.k.IsTrue() {
				return c.expr(e.Then)
			}
			return c.expr(e.Else)
		}
		jf := a.emit(opJf, -1, 0, 0)
		tv, err := c.expr(e.Then)
		if err != nil {
			return dyn, err
		}
		c.mat(tv)
		jend := a.emit(opJmp, -1, 0, 0)
		a.code[jf].a = int32(len(a.code))
		ev, err := c.expr(e.Else)
		if err != nil {
			return dyn, err
		}
		c.mat(ev)
		a.code[jend].a = int32(len(a.code))
		return dyn, nil
	case *ast.SliceExpr:
		x, err := c.expr(e.X)
		if err != nil {
			return dyn, err
		}
		if x.c {
			return constCV(x.k.Extract(uint16(e.Hi), uint16(e.Lo))), nil
		}
		a.emit(opExtract, int32(e.Hi), int32(e.Lo), 0)
		return dyn, nil
	default:
		return dyn, cerr("unsupported expression %T", e)
	}
}

var binOps = map[string]uint8{
	"==": opEqv, "!=": opNeq,
	"<": opUlt, "<=": opUle, ">": opUgt, ">=": opUge,
	"&": opAnd, "|": opOr, "^": opXor,
	"+": opAdd, "-": opSub,
	"<<": opShl, ">>": opLshr, "++": opConcat,
}

func foldBinary(op string, x, y sym.BV) (sym.BV, error) {
	switch op {
	case "==":
		return sym.Bool(x == y), nil
	case "!=":
		return sym.Bool(x != y), nil
	case "<":
		return sym.Bool(x.Ult(y)), nil
	case "<=":
		return sym.Bool(!y.Ult(x)), nil
	case ">":
		return sym.Bool(y.Ult(x)), nil
	case ">=":
		return sym.Bool(!x.Ult(y)), nil
	case "&":
		return x.And(y), nil
	case "|":
		return x.Or(y), nil
	case "^":
		return x.Xor(y), nil
	case "+":
		return x.Add(y), nil
	case "-":
		return x.Sub(y), nil
	case "<<":
		if y.Hi != 0 || y.Lo >= uint64(x.W) {
			return sym.BV{W: x.W}, nil
		}
		return x.Shl(uint(y.Lo)), nil
	case ">>":
		if y.Hi != 0 || y.Lo >= uint64(x.W) {
			return sym.BV{W: x.W}, nil
		}
		return x.Lshr(uint(y.Lo)), nil
	case "++":
		return x.Concat(y), nil
	}
	return sym.BV{}, cerr("unknown binary %s", op)
}

func (c *compiler) exprBinary(e *ast.BinaryExpr) (cv, error) {
	a := c.asm
	switch e.Op {
	case "&&":
		x, err := c.expr(e.X)
		if err != nil {
			return dyn, err
		}
		if x.c {
			if x.k.IsZero() {
				return constCV(sym.Bool(false)), nil
			}
			return c.expr(e.Y) // raw, like bmv2
		}
		jz := a.emit(opJz, -1, 0, 0)
		y, err := c.expr(e.Y)
		if err != nil {
			return dyn, err
		}
		c.mat(y)
		jend := a.emit(opJmp, -1, 0, 0)
		a.code[jz].a = int32(len(a.code))
		a.emit(opPushC, a.constIdx(sym.Bool(false)), 0, 0)
		a.code[jend].a = int32(len(a.code))
		return dyn, nil
	case "||":
		x, err := c.expr(e.X)
		if err != nil {
			return dyn, err
		}
		if x.c {
			if !x.k.IsZero() {
				return constCV(sym.Bool(true)), nil
			}
			return c.expr(e.Y)
		}
		jz := a.emit(opJz, -1, 0, 0)
		a.emit(opPushC, a.constIdx(sym.Bool(true)), 0, 0)
		jend := a.emit(opJmp, -1, 0, 0)
		a.code[jz].a = int32(len(a.code))
		y, err := c.expr(e.Y)
		if err != nil {
			return dyn, err
		}
		c.mat(y)
		a.code[jend].a = int32(len(a.code))
		return dyn, nil
	}
	op, ok := binOps[e.Op]
	if !ok {
		return dyn, cerr("unknown binary %s", e.Op)
	}
	x, err := c.expr(e.X)
	if err != nil {
		return dyn, err
	}
	if x.c {
		y, err := c.expr(e.Y)
		if err != nil {
			return dyn, err
		}
		if y.c {
			k, err := foldBinary(e.Op, x.k, y.k)
			if err != nil {
				return dyn, err
			}
			return constCV(k), nil
		}
		// Stack holds y; push x and swap to restore operand order.
		c.mat(x)
		a.emit(opSwap, 0, 0, 0)
		a.emit(op, 0, 0, 0)
		return dyn, nil
	}
	y, err := c.expr(e.Y)
	if err != nil {
		return dyn, err
	}
	c.mat(y)
	a.emit(op, 0, 0, 0)
	return dyn, nil
}

func (c *compiler) exprCall(call *ast.CallExpr) (cv, error) {
	a := c.asm
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "checksum16" {
			return c.exprChecksum(call)
		}
		return dyn, cerr("function %s cannot be used as a value", fun.Name)
	case *ast.Member:
		if fun.Name == "isValid" {
			path, err := c.lvalPath(fun.X)
			if err != nil {
				return dyn, err
			}
			slot, ok := c.cc.slot(path + ".$valid")
			if !ok {
				return dyn, cerr("%s is not a header", path)
			}
			a.emit(opLoad, slot, 0, 0)
			return dyn, nil
		}
		return dyn, cerr("method %s cannot be used as a value", fun.Name)
	default:
		return dyn, cerr("invalid call expression")
	}
}

// exprChecksum unrolls the analyzer's checksum16 model: XOR-fold every
// argument's 16-bit chunks (zero-extending to a 16-bit multiple).
// Constant arguments fold at compile time; dynamic ones spill to the
// call's scratch slot and fold chunk by chunk.
func (c *compiler) exprChecksum(call *ast.CallExpr) (cv, error) {
	a := c.asm
	acc := constCV(sym.BV{W: 16})
	tmp, ok := c.cc.slot(chkKey(call.Pos().String()))
	if !ok {
		return dyn, cerr("internal: checksum slot not pre-allocated")
	}
	xorIn := func(chunk cv) {
		if acc.c && chunk.c {
			acc = constCV(acc.k.Xor(chunk.k))
			return
		}
		if chunk.c {
			// acc is on the stack.
			a.emit(opPushC, a.constIdx(chunk.k), 0, 0)
		} else if acc.c {
			a.emit(opPushC, a.constIdx(acc.k), 0, 0)
			a.emit(opSwap, 0, 0, 0)
		}
		a.emit(opXor, 0, 0, 0)
		acc = dyn
	}
	for _, argE := range call.Args {
		v, err := c.expr(argE)
		if err != nil {
			return dyn, err
		}
		if v.c {
			k := v.k
			if k.W%16 != 0 {
				k = k.ZeroExtend(k.W + (16 - k.W%16))
			}
			for lo := uint16(0); lo < k.W; lo += 16 {
				xorIn(constCV(k.Extract(lo+15, lo)))
			}
			continue
		}
		w := c.widthOf(argE)
		if w == 0 {
			return dyn, cerr("checksum16 argument with unknown width")
		}
		padW := w
		if padW%16 != 0 {
			padW += 16 - padW%16
			a.emit(opZext, int32(padW), 0, 0)
		}
		a.emit(opStore, tmp, 0, 0)
		for lo := uint16(0); lo < padW; lo += 16 {
			a.emit(opLoad, tmp, 0, 0)
			a.emit(opExtract, int32(lo+15), int32(lo), 0)
			xorIn(dyn)
		}
	}
	return acc, nil
}

// tableApply compiles `t.apply()`: evaluate the key expressions into
// the table's key slots, then a single opTable against the pre-built
// match structure. pushHit leaves the hit flag on the stack for
// `t.apply().hit` conditions.
func (c *compiler) tableApply(fun *ast.Member, pushHit bool) error {
	a := c.asm
	if c.inBlock {
		return cerr("table apply inside an action")
	}
	if c.control == nil {
		return cerr("table apply outside a control")
	}
	id, ok := fun.X.(*ast.Ident)
	if !ok {
		return cerr("table apply target must be an identifier")
	}
	tbl := c.control.Table(id.Name)
	if tbl == nil {
		return cerr("unknown table %s", id.Name)
	}
	qname := c.control.Name + "." + id.Name

	ti, built := c.img.tableIdx[qname]
	var keySlots []int32
	var keyWidths []uint16
	if built {
		keySlots = c.img.tables[ti].keySlots
		keyWidths = c.img.tables[ti].keyWidths
	} else {
		keySlots = make([]int32, len(tbl.Keys))
		keyWidths = make([]uint16, len(tbl.Keys))
		for i := range tbl.Keys {
			keySlots[i] = c.cc.alloc("$key:"+qname+":"+strconv.Itoa(i), sym.BV{})
		}
	}
	for i, k := range tbl.Keys {
		v, err := c.expr(k.Expr)
		if err != nil {
			return err
		}
		if !built {
			if v.c {
				keyWidths[i] = v.k.W
			} else {
				keyWidths[i] = c.widthOf(k.Expr)
			}
		}
		if v.c {
			a.emit(opStoreC, keySlots[i], a.constIdx(v.k), 0)
		} else {
			a.emit(opStore, keySlots[i], 0, 0)
		}
	}
	if !built {
		t, err := buildExTable(c.cc, c.img, c.cfg, c.control, tbl, qname, keySlots, keyWidths, c.snapshotScopes())
		if err != nil {
			return err
		}
		ti = len(c.img.tables)
		c.img.tables = append(c.img.tables, t)
		c.img.tableIdx[qname] = ti
	}
	hitFlag := int32(0)
	if pushHit {
		hitFlag = 1
	}
	c.tblFix = append(c.tblFix, a.emit(opTable, int32(ti), hitFlag, -1))
	return nil
}
