// Package dpexec is goflay's data-plane executor: it compiles a P4
// program (generic or specialized) under one control-plane
// configuration into a flattened match-action bytecode image and runs
// packets through it with a tight, allocation-free interpreter loop.
//
// The compiler plays the role a JIT plays in Morpheus-style systems:
// table entries become pre-indexed match lists with their action bodies
// inlined and constant-folded against the entry's bound parameters,
// parser select cases become direct jumps, and every store slot is a
// flat array index instead of a map key. The observable semantics are
// bit-for-bit those of the reference interpreter in internal/bmv2 —
// the differential fuzz target FuzzDpexecVsBmv2 and the equivalence
// suites hold the two to packet-for-packet equality.
//
// Images are immutable once built. Incremental control-plane updates
// produce a new image via Image.WithTarget (rebuilding only the touched
// table, value set, or register fill); the engine hot-swaps the image
// pointer at epoch publication so packet execution is wait-free under
// churn. A Machine may be reused across packets and across images; it
// re-attaches (re-sizing its slot file and rebuilding register state)
// whenever it sees a new image.
package dpexec

import (
	"fmt"

	"repro/internal/sym"
)

// Opcodes for the flattened bytecode. Operands a, b, c are
// per-instruction immediates: constant-pool indices, slot numbers, jump
// targets, or side-table indices as noted.
const (
	opPushC      uint8 = iota // push consts[a]
	opLoad                    // push slots[a]
	opStore                   // slots[a] = pop
	opStoreC                  // slots[a] = consts[b]
	opSwap                    // swap the top two stack values
	opAnd                     // pop y, x; push x & y
	opOr                      // pop y, x; push x | y
	opXor                     // pop y, x; push x ^ y
	opAdd                     // pop y, x; push x + y
	opSub                     // pop y, x; push x - y
	opNot                     // pop x; push ~x
	opNeg                     // pop x; push 0 - x (width of x)
	opEqv                     // pop y, x; push Bool(x == y)
	opNeq                     // pop y, x; push Bool(x != y)
	opUlt                     // pop y, x; push Bool(x < y)
	opUle                     // pop y, x; push Bool(x <= y)
	opUgt                     // pop y, x; push Bool(x > y)
	opUge                     // pop y, x; push Bool(x >= y)
	opShl                     // pop y, x; push x << y (oversized shift = 0)
	opLshr                    // pop y, x; push x >> y (oversized shift = 0)
	opConcat                  // pop y, x; push x ++ y
	opExtract                 // pop x; push x[a:b]
	opZext                    // pop x; push x zero-extended to width a
	opJmp                     // pc = a
	opJf                      // pop x; if !x.IsTrue() pc = a
	opJz                      // pop x; if x.IsZero() pc = a
	opStep                    // parser step counter; trap traps[a] past 257
	opExtractHdr              // run extract descriptor extracts[a]
	opVsMatch                 // pop key; push Bool(vsets[a] matches key)
	opTable                   // apply tables[a]; b!=0 pushes hit; exited -> pc = c
	opRegRead                 // pop idx; slots[b] = regs[a][idx % size]
	opRegWrite                // pop v, idx; regs[a][idx % size] = v
	opCtlBegin                // control prologue: clear exited, clear stack
	opExit                    // exited = true; pc = a (end of control)
	opExitBlk                 // exited = true; halt the current block
	opRejectPkt               // parser reject: halt, mark rejected
	opTrap                    // runtime error traps[a]
)

// instr is one bytecode instruction.
type instr struct {
	op      uint8
	a, b, c int32
}

// fieldRef locates one header field: its slot and declared width.
type fieldRef struct {
	slot int32
	w    uint16
}

// extractDesc drives one packet.extract(hdr) call.
type extractDesc struct {
	fields    []fieldRef
	validSlot int32
	inParser  bool // short packet rejects in the parser, traps elsewhere
}

// deparseHeader is one header in the deparse plan.
type deparseHeader struct {
	validSlot int32
	fields    []fieldRef
}

// block is a self-contained compiled action body (table entry or miss
// action): its own code and constant pool, so an incremental table
// rebuild never mutates shared image arrays.
type block struct {
	code   []instr
	consts []sym.BV
}

// regTemplate describes one register array; Machines instantiate cells
// from it when they attach to an image.
type regTemplate struct {
	qname string
	size  int
	width uint16
	fill  sym.BV
}

// Image is an immutable compiled program + configuration. Build one
// with Compile, derive updated ones with WithTarget, and execute it
// with a Machine. All exported methods are safe for concurrent use.
type Image struct {
	code   []instr
	consts []sym.BV

	slotInit []sym.BV
	tables   []*exTable
	vsets    []*exVset
	regs     []regTemplate
	extracts []extractDesc
	traps    []string

	// Environment seeding: slots that receive the ingress port and the
	// packet length before each run.
	portSlots []int32
	lenSlots  []int32

	// Result extraction; -1 when the program has no such slot.
	dropSlot, egressSlot, mcastSlot int32
	deparse                         []deparseHeader

	codeHash uint64 // configuration-independent half of the content hash
	hash     uint64 // full content hash

	// Retained compile context for incremental rebuilds.
	cc       *compileCtx
	tableIdx map[string]int
	vsetIdx  map[string]int
	regIdx   map[string]int
}

// Hash is a deterministic content hash of the image: identical program
// + configuration always hash identically, whether the image was built
// by a full Compile or by a chain of WithTarget rebuilds. The torture
// suite uses it to pin concurrently-observed images to the sequential
// oracle's image at the same update count.
func (img *Image) Hash() uint64 { return img.hash }

// NumSlots reports the size of the flat store, a rough proxy for image
// footprint.
func (img *Image) NumSlots() int { return len(img.slotInit) }

// NumInstrs reports the length of the main code segment.
func (img *Image) NumInstrs() int { return len(img.code) }

// Result is the observable outcome of one packet, mirroring
// bmv2.Result field for field.
type Result struct {
	Dropped        bool
	ParserRejected bool
	EgressPort     uint64
	McastGrp       uint64
	// Emitted aliases an internal Machine buffer: it is valid until the
	// Machine's next Run. Copy it if you need to keep it.
	Emitted []byte
}

// Equal reports observable equality, with bmv2's convention: two
// dropped packets are equal regardless of the other fields.
func (r Result) Equal(o Result) bool {
	if r.Dropped != o.Dropped {
		return false
	}
	if r.Dropped {
		return true
	}
	if r.EgressPort != o.EgressPort || r.McastGrp != o.McastGrp {
		return false
	}
	if len(r.Emitted) != len(o.Emitted) {
		return false
	}
	for i := range r.Emitted {
		if r.Emitted[i] != o.Emitted[i] {
			return false
		}
	}
	return true
}

// RunError is a data-plane runtime error (the compiled analogue of
// bmv2's interpreter errors: parser non-termination, an entry
// referencing an unknown action, ...).
type RunError struct{ msg string }

func (e *RunError) Error() string { return "dpexec: " + e.msg }

// Machine executes packets against an Image. It is not safe for
// concurrent use; pool Machines and hand one per goroutine. After the
// first Run against an image, subsequent runs perform zero heap
// allocations.
type Machine struct {
	img   *Image
	slots []sym.BV
	stack []sym.BV
	regs  [][]sym.BV
	out   []byte

	data     []byte
	cursor   int
	nbit     uint
	steps    int
	exited   bool
	rejected bool
}

// NewMachine returns an empty machine; it attaches lazily on first Run.
func NewMachine() *Machine { return &Machine{} }

// attach (re)sizes per-image state: the slot file and register cells.
// Register contents restart from the image's fill values — register
// state persists across packets within one image, and resets when the
// control plane publishes a new image.
func (m *Machine) attach(img *Image) {
	m.img = img
	if cap(m.slots) < len(img.slotInit) {
		m.slots = make([]sym.BV, len(img.slotInit))
	} else {
		m.slots = m.slots[:len(img.slotInit)]
	}
	if cap(m.regs) < len(img.regs) {
		m.regs = make([][]sym.BV, len(img.regs))
	} else {
		m.regs = m.regs[:len(img.regs)]
	}
	for i, rt := range img.regs {
		if cap(m.regs[i]) < rt.size {
			m.regs[i] = make([]sym.BV, rt.size)
		} else {
			m.regs[i] = m.regs[i][:rt.size]
		}
		for j := range m.regs[i] {
			m.regs[i][j] = rt.fill
		}
	}
}

// Run executes one packet and returns the observable result. The
// returned Emitted slice is only valid until the next Run.
func (m *Machine) Run(img *Image, data []byte, port uint16) (Result, error) {
	if m.img != img {
		m.attach(img)
	}
	copy(m.slots, img.slotInit)
	for _, s := range img.portSlots {
		m.slots[s] = sym.NewBV(9, uint64(port)%512)
	}
	for _, s := range img.lenSlots {
		m.slots[s] = sym.NewBV(32, uint64(len(data)))
	}
	m.data = data
	m.cursor = 0
	m.steps = 0
	m.exited = false
	m.rejected = false
	m.stack = m.stack[:0]

	if err := m.exec(img.code, img.consts); err != nil {
		return Result{}, err
	}
	if m.rejected {
		return Result{Dropped: true, ParserRejected: true}, nil
	}
	var res Result
	if img.dropSlot >= 0 && !m.slots[img.dropSlot].IsZero() {
		res.Dropped = true
		return res, nil
	}
	if img.egressSlot >= 0 {
		res.EgressPort = m.slots[img.egressSlot].Uint64()
	}
	if img.mcastSlot >= 0 {
		res.McastGrp = m.slots[img.mcastSlot].Uint64()
	}
	res.Emitted = m.deparse()
	return res, nil
}

// exec runs one code segment (the image's main code, or one compiled
// action block invoked from a table application).
func (m *Machine) exec(code []instr, consts []sym.BV) error {
	img := m.img
	s := m.stack
	for pc := 0; pc < len(code); {
		in := code[pc]
		switch in.op {
		case opPushC:
			s = append(s, consts[in.a])
			pc++
		case opLoad:
			s = append(s, m.slots[in.a])
			pc++
		case opStore:
			m.slots[in.a] = s[len(s)-1]
			s = s[:len(s)-1]
			pc++
		case opStoreC:
			m.slots[in.a] = consts[in.b]
			pc++
		case opSwap:
			n := len(s)
			s[n-1], s[n-2] = s[n-2], s[n-1]
			pc++
		case opAnd:
			n := len(s)
			s[n-2] = s[n-2].And(s[n-1])
			s = s[:n-1]
			pc++
		case opOr:
			n := len(s)
			s[n-2] = s[n-2].Or(s[n-1])
			s = s[:n-1]
			pc++
		case opXor:
			n := len(s)
			s[n-2] = s[n-2].Xor(s[n-1])
			s = s[:n-1]
			pc++
		case opAdd:
			n := len(s)
			s[n-2] = s[n-2].Add(s[n-1])
			s = s[:n-1]
			pc++
		case opSub:
			n := len(s)
			s[n-2] = s[n-2].Sub(s[n-1])
			s = s[:n-1]
			pc++
		case opNot:
			s[len(s)-1] = s[len(s)-1].Not()
			pc++
		case opNeg:
			x := s[len(s)-1]
			s[len(s)-1] = sym.BV{W: x.W}.Sub(x)
			pc++
		case opEqv:
			n := len(s)
			s[n-2] = sym.Bool(s[n-2] == s[n-1])
			s = s[:n-1]
			pc++
		case opNeq:
			n := len(s)
			s[n-2] = sym.Bool(s[n-2] != s[n-1])
			s = s[:n-1]
			pc++
		case opUlt:
			n := len(s)
			s[n-2] = sym.Bool(s[n-2].Ult(s[n-1]))
			s = s[:n-1]
			pc++
		case opUle:
			n := len(s)
			s[n-2] = sym.Bool(!s[n-1].Ult(s[n-2]))
			s = s[:n-1]
			pc++
		case opUgt:
			n := len(s)
			s[n-2] = sym.Bool(s[n-1].Ult(s[n-2]))
			s = s[:n-1]
			pc++
		case opUge:
			n := len(s)
			s[n-2] = sym.Bool(!s[n-2].Ult(s[n-1]))
			s = s[:n-1]
			pc++
		case opShl:
			n := len(s)
			x, y := s[n-2], s[n-1]
			if y.Hi != 0 || y.Lo >= uint64(x.W) {
				s[n-2] = sym.BV{W: x.W}
			} else {
				s[n-2] = x.Shl(uint(y.Lo))
			}
			s = s[:n-1]
			pc++
		case opLshr:
			n := len(s)
			x, y := s[n-2], s[n-1]
			if y.Hi != 0 || y.Lo >= uint64(x.W) {
				s[n-2] = sym.BV{W: x.W}
			} else {
				s[n-2] = x.Lshr(uint(y.Lo))
			}
			s = s[:n-1]
			pc++
		case opConcat:
			n := len(s)
			s[n-2] = s[n-2].Concat(s[n-1])
			s = s[:n-1]
			pc++
		case opExtract:
			s[len(s)-1] = s[len(s)-1].Extract(uint16(in.a), uint16(in.b))
			pc++
		case opZext:
			s[len(s)-1] = s[len(s)-1].ZeroExtend(uint16(in.a))
			pc++
		case opJmp:
			pc = int(in.a)
		case opJf:
			v := s[len(s)-1]
			s = s[:len(s)-1]
			if !v.IsTrue() {
				pc = int(in.a)
			} else {
				pc++
			}
		case opJz:
			v := s[len(s)-1]
			s = s[:len(s)-1]
			if v.IsZero() {
				pc = int(in.a)
			} else {
				pc++
			}
		case opStep:
			m.steps++
			if m.steps > 257 {
				m.stack = s
				return &RunError{img.traps[in.a]}
			}
			pc++
		case opExtractHdr:
			d := &img.extracts[in.a]
			ok := true
			for i := range d.fields {
				f := d.fields[i]
				v, got := m.readField(f.w)
				if !got {
					ok = false
					break
				}
				m.slots[f.slot] = v
			}
			if !ok {
				m.stack = s
				if d.inParser {
					m.rejected = true
					return nil
				}
				return &RunError{"packet too short"}
			}
			m.slots[d.validSlot] = sym.Bool(true)
			pc++
		case opVsMatch:
			key := s[len(s)-1]
			s[len(s)-1] = sym.Bool(img.vsets[in.a].match(key))
			pc++
		case opTable:
			m.stack = s
			hit, err := m.table(img.tables[in.a])
			if err != nil {
				return err
			}
			s = m.stack
			if in.b != 0 {
				s = append(s, sym.Bool(hit))
			}
			if m.exited {
				pc = int(in.c)
			} else {
				pc++
			}
		case opRegRead:
			idx := s[len(s)-1]
			s = s[:len(s)-1]
			cells := m.regs[in.a]
			m.slots[in.b] = cells[int(idx.Uint64())%len(cells)]
			pc++
		case opRegWrite:
			n := len(s)
			v, idx := s[n-1], s[n-2]
			s = s[:n-2]
			cells := m.regs[in.a]
			cells[int(idx.Uint64())%len(cells)] = v
			pc++
		case opCtlBegin:
			m.exited = false
			s = s[:0]
			pc++
		case opExit:
			m.exited = true
			pc = int(in.a)
		case opExitBlk:
			m.exited = true
			m.stack = s
			return nil
		case opRejectPkt:
			m.rejected = true
			m.stack = s
			return nil
		case opTrap:
			m.stack = s
			return &RunError{img.traps[in.a]}
		default:
			m.stack = s
			return &RunError{fmt.Sprintf("bad opcode %d", in.op)}
		}
	}
	m.stack = s
	return nil
}

// table applies one compiled table: first matching active entry wins
// (entries are in ActiveEntries precedence order; the exact-only index
// is a pure accelerator since at most one exact entry can match).
func (m *Machine) table(t *exTable) (bool, error) {
	var e *exEntry
	if t.index != nil {
		h := fnvOffset
		for _, si := range t.keySlots {
			h = mixBV(h, m.slots[si])
		}
		for _, ei := range t.index[h] {
			if m.entryMatches(t, &t.entries[ei]) {
				e = &t.entries[ei]
				break
			}
		}
	} else {
		for i := range t.entries {
			if m.entryMatches(t, &t.entries[i]) {
				e = &t.entries[i]
				break
			}
		}
	}
	if e != nil {
		if e.trap != "" {
			return false, &RunError{e.trap}
		}
		if e.blk != nil {
			if err := m.exec(e.blk.code, e.blk.consts); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if t.missTrap != "" {
		return false, &RunError{t.missTrap}
	}
	if t.miss != nil {
		if err := m.exec(t.miss.code, t.miss.consts); err != nil {
			return false, err
		}
	}
	return false, nil
}

func (m *Machine) entryMatches(t *exTable, e *exEntry) bool {
	for i := range e.matches {
		em := &e.matches[i]
		key := m.slots[t.keySlots[i]]
		switch em.mode {
		case matchAlways:
		case matchEq:
			if key != em.value {
				return false
			}
		case matchMasked:
			if key.W != em.mask.W {
				return false
			}
			if (sym.BV{Hi: key.Hi & em.mask.Hi, Lo: key.Lo & em.mask.Lo, W: key.W}) != em.mvalue {
				return false
			}
		}
	}
	return true
}

// readField consumes width bits from the packet MSB-first, with a
// byte-aligned fast path.
func (m *Machine) readField(width uint16) (sym.BV, bool) {
	if m.cursor+int(width) > len(m.data)*8 {
		return sym.BV{}, false
	}
	if m.cursor%8 == 0 && width%8 == 0 {
		v := sym.FromBE(m.data[m.cursor/8:], width)
		m.cursor += int(width)
		return v, true
	}
	var hi, lo uint64
	for i := 0; i < int(width); i++ {
		bit := uint64(m.data[(m.cursor+i)/8] >> (7 - uint((m.cursor+i)%8)) & 1)
		hi = hi<<1 | lo>>63
		lo = lo<<1 | bit
	}
	m.cursor += int(width)
	return sym.BV{Hi: hi, Lo: lo, W: width}, true
}

// deparse emits every valid header per the image's precomputed plan,
// then the unparsed payload, into the machine's reusable buffer.
func (m *Machine) deparse() []byte {
	img := m.img
	m.out = m.out[:0]
	m.nbit = 0
	for i := range img.deparse {
		h := &img.deparse[i]
		if m.slots[h.validSlot].IsZero() {
			continue
		}
		for _, f := range h.fields {
			m.writeBits(m.slots[f.slot], f.w)
		}
	}
	if m.cursor%8 == 0 && m.cursor/8 <= len(m.data) {
		m.out = append(m.out, m.data[m.cursor/8:]...)
	}
	return m.out
}

func (m *Machine) writeBits(v sym.BV, width uint16) {
	if m.nbit%8 == 0 && width%8 == 0 {
		m.out = sym.AppendBE(m.out, v, width)
		m.nbit += uint(width)
		return
	}
	for i := int(width) - 1; i >= 0; i-- {
		if m.nbit%8 == 0 {
			m.out = append(m.out, 0)
		}
		if v.Bit(uint16(i)) {
			m.out[len(m.out)-1] |= 1 << (7 - m.nbit%8)
		}
		m.nbit++
	}
}
