package trace

import (
	"testing"
	"time"
)

func TestGenerateOrderingAndClasses(t *testing.T) {
	span := 30 * time.Minute
	evs := Generate(span, Profile{})
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].At > evs[i].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	counts := map[Class]int{}
	for _, e := range evs {
		if e.At >= span {
			t.Fatalf("event beyond span: %v", e.At)
		}
		counts[e.Class]++
	}
	// Fig. 1 shape: routing bursts dominate, NAT churn is steady,
	// policy changes are rare (none expected inside 30 minutes with the
	// 6h default interval).
	if counts[PolicyChange] != 0 {
		t.Fatalf("policy changes inside 30min: %d", counts[PolicyChange])
	}
	if counts[RoutingBurst] < 10*counts[NATChurn] {
		t.Fatalf("bursts should dominate: routing=%d nat=%d", counts[RoutingBurst], counts[NATChurn])
	}
}

func TestBurstStructure(t *testing.T) {
	evs := Generate(10*time.Minute, Profile{BurstSize: 250})
	byBurst := map[int]int{}
	for _, e := range evs {
		if e.Class == RoutingBurst {
			byBurst[e.Burst]++
		}
	}
	if len(byBurst) < 3 {
		t.Fatalf("expected several bursts, got %d", len(byBurst))
	}
	for id, n := range byBurst {
		if n != 250 {
			t.Fatalf("burst %d has %d events, want 250", id, n)
		}
	}
}

func TestSummarize(t *testing.T) {
	span := time.Hour
	evs := Generate(span, Profile{})
	sums := Summarize(evs, span)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	var routing, nat RateSummary
	for _, s := range sums {
		switch s.Class {
		case RoutingBurst:
			routing = s
		case NATChurn:
			nat = s
		}
	}
	if routing.MaxBurst < 100 {
		t.Fatalf("routing max burst = %d", routing.MaxBurst)
	}
	if nat.MeanGap <= routing.MeanGap {
		t.Fatalf("NAT churn should be slower than burst traffic: %v vs %v", nat.MeanGap, routing.MeanGap)
	}
	for _, s := range sums {
		if s.String() == "" {
			t.Fatal("empty summary string")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(20*time.Minute, Profile{})
	b := Generate(20*time.Minute, Profile{})
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
