// Package trace generates control-plane update traces with the temporal
// structure of the paper's Fig. 1: different input classes change at
// very different rates — data-plane source code over days, control-plane
// policy over hours, routing/NAT/forwarding state in frequent bursts
// ("changes happening at once quickly followed by a long quiescence",
// §1, citing SWIFT/B4-style churn).
package trace

import (
	"fmt"
	"time"
)

// Class is an input class from Fig. 1.
type Class uint8

const (
	// PolicyChange: encapsulation/BGP policy/BFD configuration — rare
	// (hours to days).
	PolicyChange Class = iota
	// RoutingBurst: routing table updates — bursts of hundreds of rules
	// within seconds, then quiescence.
	RoutingBurst
	// NATChurn: NAT/firewall entries — steady churn (seconds).
	NATChurn
)

var classNames = [...]string{"policy", "routing-burst", "nat-churn"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Event is one control-plane update occurrence.
type Event struct {
	At    time.Duration
	Class Class
	// Burst tags events belonging to the same burst.
	Burst int
}

// Profile shapes a generated trace.
type Profile struct {
	// PolicyInterval separates policy changes (default 6h).
	PolicyInterval time.Duration
	// BurstInterval separates routing bursts (default 90s quiescence).
	BurstInterval time.Duration
	// BurstSize is the number of updates per routing burst (default
	// 300; the paper cites bursts of hundreds of rules in a few
	// seconds).
	BurstSize int
	// BurstSpread is the wall time over which a burst's updates arrive
	// (default 2s).
	BurstSpread time.Duration
	// NATInterval separates NAT churn updates (default 5s).
	NATInterval time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.PolicyInterval == 0 {
		p.PolicyInterval = 6 * time.Hour
	}
	if p.BurstInterval == 0 {
		p.BurstInterval = 90 * time.Second
	}
	if p.BurstSize == 0 {
		p.BurstSize = 300
	}
	if p.BurstSpread == 0 {
		p.BurstSpread = 2 * time.Second
	}
	if p.NATInterval == 0 {
		p.NATInterval = 5 * time.Second
	}
	return p
}

// Generate produces the merged, time-ordered event sequence for a span
// of wall time. Deterministic: jitter comes from a fixed xorshift
// stream.
func Generate(span time.Duration, p Profile) []Event {
	p = p.withDefaults()
	rng := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x9e3779b97f4a7c15
	}
	jitter := func(base time.Duration) time.Duration {
		if base <= 0 {
			return 0
		}
		return time.Duration(next() % uint64(base/4))
	}

	var events []Event
	for at := p.PolicyInterval; at < span; at += p.PolicyInterval + jitter(p.PolicyInterval) {
		events = append(events, Event{At: at, Class: PolicyChange})
	}
	burst := 0
	for at := p.BurstInterval; at < span; at += p.BurstInterval + jitter(p.BurstInterval) {
		burst++
		for i := 0; i < p.BurstSize; i++ {
			off := time.Duration(uint64(i) * uint64(p.BurstSpread) / uint64(p.BurstSize))
			events = append(events, Event{At: at + off, Class: RoutingBurst, Burst: burst})
		}
	}
	for at := p.NATInterval; at < span; at += p.NATInterval + jitter(p.NATInterval) {
		events = append(events, Event{At: at, Class: NATChurn})
	}
	sortEvents(events)
	return events
}

func sortEvents(evs []Event) {
	// Insertion sort is fine at trace sizes; keeps the package
	// dependency-free.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].At > evs[j].At; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}

// RateSummary describes a class's update rate in a trace, for the
// Fig. 1 report.
type RateSummary struct {
	Class  Class
	Events int
	// MeanGap is the average inter-update gap.
	MeanGap time.Duration
	// MaxBurst is the largest number of events sharing a burst.
	MaxBurst int
}

func (r RateSummary) String() string {
	return fmt.Sprintf("%-14s %6d events, mean gap %12v, max burst %4d",
		r.Class, r.Events, r.MeanGap, r.MaxBurst)
}

// Summarize computes per-class rates over a trace spanning span.
func Summarize(events []Event, span time.Duration) []RateSummary {
	counts := map[Class]int{}
	bursts := map[Class]map[int]int{}
	for _, e := range events {
		counts[e.Class]++
		if bursts[e.Class] == nil {
			bursts[e.Class] = map[int]int{}
		}
		bursts[e.Class][e.Burst]++
	}
	var out []RateSummary
	for _, c := range []Class{PolicyChange, RoutingBurst, NATChurn} {
		n := counts[c]
		rs := RateSummary{Class: c, Events: n}
		if n > 0 {
			rs.MeanGap = span / time.Duration(n)
		}
		for id, cnt := range bursts[c] {
			if id != 0 && cnt > rs.MaxBurst {
				rs.MaxBurst = cnt
			}
		}
		out = append(out, rs)
	}
	return out
}
