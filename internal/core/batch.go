package core

import (
	"context"
	"time"

	"repro/internal/controlplane"
	"repro/internal/obs"
)

// ApplyBatch processes a slice of control-plane updates as one atomic
// configuration transition, the batched-Write shape of a P4Runtime
// controller. It is the coalescing counterpart of Apply: updates are
// applied to the configuration in arrival order (rejecting exactly the
// updates sequential Apply would reject), then grouped by target so
// each touched object's assignment is recompiled once, and the
// deduplicated union of tainted program points is re-evaluated in a
// single (parallel) pass instead of once per update.
//
// The end state — configuration, environment, verdicts, installed
// implementations, specialized program — is identical to applying the
// same updates one at a time with Apply. Decisions are attributed at
// batch granularity: updates sharing a target share one verdict-change
// set, so if anything the group touched changed behaviour, every
// accepted update of the group reports Recompile; if nothing changed,
// every one reports Forward. Relative to sequential decisions this
// preserves (a) all-Forward batches exactly, (b) "some update required
// recompilation" per group, and (c) single-update batches exactly;
// intermediate verdict flips that cancel within one batch are
// deliberately not observable (that is the point of coalescing).
//
// A nil or empty slice is a no-op that still counts one batch.
func (s *Specializer) ApplyBatch(updates []*controlplane.Update) []*Decision {
	return s.ApplyBatchCtx(context.Background(), updates)
}

// ApplyBatchCtx is ApplyBatch with a latency budget: when ctx carries a
// deadline, the adaptive precision controller (deadline.go) projects
// the precise analysis cost of every target the batch touches and
// degrades the most expensive degradable ones until the projected total
// fits the remaining budget. A context already done on entry rejects
// every update without touching any state.
func (s *Specializer) ApplyBatchCtx(ctx context.Context, updates []*controlplane.Update) []*Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.lastApply.Store(time.Now().UnixNano())
	defer s.publish() // one epoch per batch, after the sweep trigger
	defer s.maybeSweepArena()
	s.stats.Batches++
	s.met.batches.Inc()
	if len(updates) == 0 {
		return nil
	}
	batchNo := s.stats.Batches
	t0 := time.Now()
	if err := s.admit(ctx); err != nil {
		// Admission failed: every update is rejected before any
		// configuration state is touched.
		decisions := make([]*Decision, len(updates))
		s.stats.BatchedUpdates += len(updates)
		s.met.batchedUpdates.Add(int64(len(updates)))
		for i, u := range updates {
			s.stats.Updates = s.co.nextSeq()
			s.met.updates.Inc()
			s.stats.Rejected++
			d := &Decision{Update: u, Kind: Rejected, Err: err, Elapsed: time.Since(t0)}
			decisions[i] = d
			s.met.decisionCounter(Rejected).Inc()
			s.met.updateNS.ObserveDuration(d.Elapsed)
			if s.audit != nil {
				s.audit.Append(auditRecord(d, s.stats.Updates, batchNo, 0, nil))
			}
		}
		return decisions
	}
	s.stats.BatchedUpdates += len(updates)
	s.met.batchedUpdates.Add(int64(len(updates)))
	decisions := make([]*Decision, len(updates))
	seqs := make([]int, len(updates))
	bsp := s.trace.Start("batch", 0)
	defer s.trace.End(bsp)
	s.trace.Attr(bsp, "updates", int64(len(updates)))

	// Per-decision point changes and the worker count of the one
	// evaluation pass, recorded for the audit trail.
	var changesOf map[*Decision][]obs.PointChange
	if s.audit != nil {
		changesOf = make(map[*Decision][]obs.PointChange)
	}
	workersUsed := 0

	// Phase 1: run every update through configuration validation in
	// arrival order — entry sequence numbers (and with them the entry
	// ordering of the specialized source) depend on it — and group the
	// accepted ones by target.
	type group struct {
		decisions []*Decision
		rejected  bool
	}
	groups := make(map[string]*group)
	var order []string
	accepted := 0
	for i, u := range updates {
		d := &Decision{Update: u}
		decisions[i] = d
		s.stats.Updates = s.co.nextSeq()
		seqs[i] = s.stats.Updates
		s.met.updates.Inc()
		if err := s.Cfg.Apply(u); err != nil {
			s.stats.Rejected++
			d.Kind = Rejected
			d.Err = err
			d.Elapsed = time.Since(t0)
			continue
		}
		accepted++
		target := u.Target()
		g := groups[target]
		if g == nil {
			g = &group{}
			groups[target] = g
			order = append(order, target)
		}
		g.decisions = append(g.decisions, d)
	}
	if accepted > 0 {
		// Sequential Apply would run one evaluation pass per accepted
		// update; the batch runs exactly one.
		s.stats.Coalesced += accepted - 1
		s.met.coalesced.Add(int64(accepted - 1))
		// Batches mutate many targets in one epoch; the published image
		// recompiles from the specialized program rather than chaining
		// per-target patches.
		s.imgMarkFull()
	}

	finish := func() []*Decision {
		elapsed := time.Since(t0)
		for _, d := range decisions {
			if d.Kind != Rejected {
				d.Elapsed = elapsed
			}
		}
		s.stats.UpdateTime += elapsed
		for i, d := range decisions {
			s.met.decisionCounter(d.Kind).Inc()
			s.met.updateNS.ObserveDuration(d.Elapsed)
			if s.audit != nil {
				workers := 0
				if d.Kind != Rejected {
					workers = workersUsed
				}
				s.audit.Append(auditRecord(d, seqs[i], batchNo, workers, changesOf[d]))
			}
		}
		return decisions
	}

	// With specialization disabled no valid update can invalidate the
	// installed (original) program.
	if s.quality == QualityNone {
		for _, d := range decisions {
			if d.Kind != Rejected {
				d.Kind = Forward
				s.stats.Forwarded++
			}
		}
		return finish()
	}

	// Deadline policy (deadline.go): degrade the most expensive
	// degradable targets until the batch's projected precise cost fits
	// the remaining budget, before any assignment is compiled.
	s.shedForBatch(ctx, order)

	// Phase 2: recompile each touched target's assignment once,
	// regardless of how many updates of the batch hit it.
	tc := time.Now()
	csp := s.trace.Start("assign-compile", bsp)
	live := make([]string, 0, len(order))
	for _, target := range order {
		g := groups[target]
		if err := s.recompileTarget(target); err != nil {
			// Unreachable for updates the configuration accepted, but
			// mirror Apply's rejection path.
			g.rejected = true
			for _, d := range g.decisions {
				d.Kind = Rejected
				d.Err = err
				s.stats.Rejected++
			}
			continue
		}
		live = append(live, target)
	}
	s.trace.End(csp)

	// Phase 3: one re-evaluation over the deduplicated union of every
	// point the batch taints, grouped by taint-partition shard and
	// fanned out over the worker pool (parallel.go / shard.go).
	allPts := s.An.PointsOfTargets(live)
	workersUsed = s.effectiveWorkers(len(allPts))
	te := time.Now()
	qsp := s.trace.Start("query", bsp)
	changedIDs := s.reevalPoints(allPts)
	s.trace.Attr(qsp, "points", int64(len(allPts)))
	s.trace.Attr(qsp, "changed", int64(len(changedIDs)))
	s.trace.End(qsp)
	evalElapsed := time.Since(te)
	s.stats.EvalTime += evalElapsed
	s.met.evalNS.ObserveDuration(evalElapsed)
	// Feed the cost estimator: the pass's per-point cost stands in for
	// each precisely compiled target (degraded and statically
	// overapproximated targets ran the flat path and are skipped).
	if n := len(allPts); n > 0 {
		per := float64(time.Since(tc).Nanoseconds()) / float64(n)
		for _, target := range live {
			if !s.Cfg.Overapproximated(target) {
				s.observePerPoint(target, per)
			}
		}
	}
	changedSet := make(map[int]bool, len(changedIDs))
	for _, id := range changedIDs {
		changedSet[id] = true
	}
	// Index the pass's point changes for per-update attribution.
	var chByPoint map[int]obs.PointChange
	if s.audit != nil {
		chByPoint = make(map[int]obs.PointChange, len(s.lastChanges))
		for _, ch := range s.lastChanges {
			chByPoint[ch.Point] = ch
		}
	}

	// Phase 4: attribute the outcome per target group.
	for _, target := range order {
		g := groups[target]
		if g.rejected {
			continue
		}
		if _, deg := s.degraded[target]; deg {
			for _, d := range g.decisions {
				d.Degraded = true
			}
		}
		tpts := s.An.PointsOf(target)
		var gchanged []int
		for _, p := range tpts {
			if changedSet[p.ID] {
				gchanged = append(gchanged, p.ID)
			}
		}
		gd := &Decision{}
		changedImpls := s.changedImpls(target, gd)
		if len(gchanged) == 0 && len(changedImpls) == 0 {
			for _, d := range g.decisions {
				d.Kind = Forward
				d.AffectedPoints = len(tpts)
				s.stats.Forwarded++
			}
			continue
		}
		comps := map[string]bool{}
		for name, impl := range changedImpls {
			comps[name] = true
			s.impls[name] = impl
		}
		for _, id := range gchanged {
			p := s.An.Points[id]
			switch {
			case p.Table != "":
				comps[p.Table] = true
				s.impls[p.Table] = s.idealImpl(p.Table)
			case p.ParserState != "":
				comps[p.Control+".parser"] = true
			default:
				comps[p.Control] = true
			}
		}
		components := make([]string, 0, len(comps))
		for c := range comps {
			components = append(components, c)
		}
		sortStrings(components)
		var gchanges []obs.PointChange
		if s.audit != nil {
			gchanges = make([]obs.PointChange, 0, len(gchanged))
			for _, id := range gchanged {
				gchanges = append(gchanges, chByPoint[id])
			}
		}
		for _, d := range g.decisions {
			d.Kind = Recompile
			d.AffectedPoints = len(tpts)
			d.ChangedPoints = gchanged
			d.Components = components
			d.ImplementationChange = gd.ImplementationChange
			s.stats.Recompilations++
			if s.audit != nil {
				changesOf[d] = gchanges
			}
		}
	}
	return finish()
}
