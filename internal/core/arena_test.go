// Arena suite: the expression-arena garbage collector (arena.go) under
// sustained churn. Hash-consed nodes are immortal without it, so a
// long-lived engine leaks heap proportional to update history — the
// failure mode the long-horizon soak tier (make soak-churn) first
// caught. The test drives enough insert/drain cycles to cross the
// sweep threshold repeatedly and asserts (a) sweeps actually ran,
// (b) the intern table stays bounded by live state rather than
// history, and (c) an engine that swept at per-update boundaries is
// observationally identical to one that swept at per-batch boundaries
// — sweep scheduling must never be visible.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/progs"
)

// arenaCycles × arenaCycleLen updates intern roughly a dozen fresh
// nodes each, comfortably crossing the 1<<14-node sweep floor several
// times while keeping the test in single-digit seconds.
const (
	arenaCycles   = 4
	arenaCycleLen = 512
	// arenaNodeBound is the post-run ceiling on interned nodes: after a
	// drain the live set is far below the sweep floor (1<<14), so the
	// re-armed threshold is the floor itself and the table must sit
	// under 2× the floor with room for one cycle of fresh residue.
	arenaNodeBound = 1 << 15
)

func TestArenaSweepBoundsNodes(t *testing.T) {
	p, err := progs.ByName("nat44")
	if err != nil {
		t.Fatal(err)
	}
	seq := loadEngine(t, p, 1)
	bat := loadEngine(t, p, parallelWorkers)
	for _, s := range []*core.Specializer{seq, bat} {
		if err := p.ApplyRepresentative(s); err != nil {
			t.Fatal(err)
		}
	}
	baseline := seq.Cfg.NumEntries(p.BurstTable)

	for cyc := 0; cyc < arenaCycles; cyc++ {
		cs, err := fuzz.Churn(seq.An, fuzz.ChurnSpec{
			Kind: fuzz.Diurnal, Table: p.BurstTable,
			Updates: arenaCycleLen, Seed: 1000 + uint64(cyc),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range cs.Updates {
			if d := seq.Apply(u); d.Kind == core.Rejected {
				t.Fatalf("cycle %d: sequential update %d (%s) rejected: %v", cyc, i, u, d.Err)
			}
		}
		for _, batch := range cs.Batches() {
			for i, d := range bat.ApplyBatch(batch) {
				if d.Kind == core.Rejected {
					t.Fatalf("cycle %d: batched update %s rejected: %v", cyc, batch[i], d.Err)
				}
			}
		}
		drain := cs.Drain()
		for _, u := range drain {
			if d := seq.Apply(u); d.Kind == core.Rejected {
				t.Fatalf("cycle %d: sequential drain of %s rejected: %v", cyc, u, d.Err)
			}
		}
		for _, d := range bat.ApplyBatch(drain) {
			if d.Kind == core.Rejected {
				t.Fatalf("cycle %d: batched drain rejected: %v", cyc, d.Err)
			}
		}
	}

	for name, s := range map[string]*core.Specializer{"sequential": seq, "batch": bat} {
		st := s.Statistics()
		if st.ArenaSweeps == 0 {
			t.Errorf("%s: no arena sweeps after %d churn updates", name, arenaCycles*arenaCycleLen)
		}
		if st.ArenaSwept == 0 {
			t.Errorf("%s: sweeps ran but reclaimed nothing", name)
		}
		if st.ArenaNodes > arenaNodeBound {
			t.Errorf("%s: %d interned nodes after drain (> %d): arena grows with history, not live state",
				name, st.ArenaNodes, arenaNodeBound)
		}
		if got := s.Cfg.NumEntries(p.BurstTable); got != baseline {
			t.Errorf("%s: %d entries in %s after drain, want baseline %d", name, got, p.BurstTable, baseline)
		}
		t.Logf("%s: sweeps=%d swept=%d live=%d", name, st.ArenaSweeps, st.ArenaSwept, st.ArenaNodes)
	}
	// The two engines swept at different points in history (per update
	// vs per batch); their end states must still be indistinguishable.
	sameEndState(t, seq, bat)
}
