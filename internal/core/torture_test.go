// Concurrency torture suite for the epoch/shard engine (epoch.go,
// shard.go): concurrent wait-free readers + batch writers + snapshots
// + arena sweeps + stats monitors, run under -race, proving the two
// properties the lock-free read path stands on:
//
//  1. Every observed epoch corresponds to some sequential state: a
//     sequential oracle replays the same deterministic schedule and
//     records the engine state after every mutating call; every epoch
//     a concurrent reader loads must match the oracle's state at that
//     epoch's update count — verdict-for-verdict, entry-for-entry,
//     generation included. A reader can never see a state "between"
//     two updates of a batch, a torn verdict slice, or counters from a
//     different cut than the verdicts.
//
//  2. Audit sequences stay gap-free: after the run the trail holds
//     exactly one record per update, Seq 1..N consecutive, and at any
//     moment a reader observing an epoch with Updates=k finds at least
//     k records already in the trail (records are appended before the
//     epoch publishes).
//
// The suite also carries the GOMAXPROCS 1/4/8/16 re-runs of the
// equivalence matrix and the property-based linearizability test of
// Specializer.Entries against the audit trail (every entries count
// observed mid-churn must equal replaying the audit prefix up to its
// epoch's update count).
package core_test

import (
	"hash/fnv"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dpexec"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/progs"
)

// tortureProgram is the default torture workload: nat44's diurnal
// churn interns fresh constants fast enough to cross the arena-sweep
// floor in long mode, so sweeps run concurrently with the readers.
const tortureProgram = "nat44"

// withGOMAXPROCS runs fn at the given GOMAXPROCS, restoring the old
// value afterwards. The sweep is meaningful even on a single-core
// container: GOMAXPROCS>1 lets the runtime preempt and interleave
// goroutines on more Ps, which is what the race detector needs to see.
func withGOMAXPROCS(t *testing.T, n int, fn func(t *testing.T)) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn(t)
}

// tortureSchedule is the deterministic mutating-call schedule both the
// oracle and the live engine replay: the representative configuration
// as singleton batches, then churn cycles (with drains) chunked into
// controller-shaped batches.
func tortureSchedule(t *testing.T, p *progs.Program, s *core.Specializer, cycles, cycleLen int) [][]*controlplane.Update {
	t.Helper()
	var schedule [][]*controlplane.Update
	if p.Representative != nil {
		for _, u := range p.Representative() {
			schedule = append(schedule, []*controlplane.Update{u})
		}
	}
	for cyc := 0; cyc < cycles; cyc++ {
		cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
			Kind: fuzz.Diurnal, Table: p.BurstTable,
			Updates: cycleLen, Seed: 7000 + uint64(cyc),
		})
		if err != nil {
			t.Fatal(err)
		}
		schedule = append(schedule, cs.Batches()...)
		schedule = append(schedule, cs.Drain())
	}
	return schedule
}

// oracleEntry is the sequential engine state after one mutating call.
type oracleEntry struct {
	vhash      uint64
	entries    map[string]int
	generation uint64
}

// viewHash folds an epoch view's verdicts into one comparable hash.
func viewHash(v core.EpochView) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for id := 0; id < v.NumVerdicts(); id++ {
		vd := v.Verdict(id)
		put(uint64(vd.Kind))
		put(uint64(vd.Val.W))
		put(vd.Val.Hi)
		put(vd.Val.Lo)
	}
	return h.Sum64()
}

// captureOracle records one engine state keyed by its update count.
func captureOracle(oracle map[int]oracleEntry, s *core.Specializer, tables []string) {
	v := s.Epoch()
	e := oracleEntry{vhash: viewHash(v), generation: v.Generation,
		entries: make(map[string]int, len(tables))}
	for _, name := range tables {
		e.entries[name] = v.Entries(name)
	}
	oracle[v.Stats.Updates] = e
}

// runOracle replays the schedule sequentially (Workers:1) and records
// the state after every mutating call.
func runOracle(t *testing.T, p *progs.Program, schedule [][]*controlplane.Update) map[int]oracleEntry {
	t.Helper()
	s := loadEngine(t, p, 1)
	defer s.Close()
	oracle := make(map[int]oracleEntry, len(schedule)+1)
	captureOracle(oracle, s, s.An.TableOrder)
	for _, batch := range schedule {
		for i, d := range s.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				t.Fatalf("oracle: update %s (%d) rejected: %v", batch[i], i, d.Err)
			}
		}
		captureOracle(oracle, s, s.An.TableOrder)
	}
	return oracle
}

// checkView asserts one observed epoch view equals the oracle's
// sequential state at the view's update count. Called from reader
// goroutines: uses t.Errorf, never Fatalf.
func checkView(t *testing.T, label string, v core.EpochView, oracle map[int]oracleEntry, tables []string) bool {
	st := v.Stats
	if st.Updates != st.Forwarded+st.Recompilations+st.Rejected {
		t.Errorf("%s: epoch %d: counter partition broken: %+v", label, v.Seq, st)
		return false
	}
	o, ok := oracle[st.Updates]
	if !ok {
		t.Errorf("%s: epoch %d: updates=%d is no sequential state (mid-batch publication?)",
			label, v.Seq, st.Updates)
		return false
	}
	if h := viewHash(v); h != o.vhash {
		t.Errorf("%s: epoch %d (updates=%d): verdicts diverge from sequential state",
			label, v.Seq, st.Updates)
		return false
	}
	if v.Generation != o.generation {
		t.Errorf("%s: epoch %d (updates=%d): generation %d, oracle %d",
			label, v.Seq, st.Updates, v.Generation, o.generation)
		return false
	}
	for _, name := range tables {
		if got, want := v.Entries(name), o.entries[name]; got != want {
			t.Errorf("%s: epoch %d (updates=%d): table %s has %d entries, oracle %d",
				label, v.Seq, st.Updates, name, got, want)
			return false
		}
	}
	return true
}

// tortureRun is the shared body: one live engine under a batch writer,
// concurrent epoch readers, a stats monitor, and a snapshotter, all
// checked against the sequential oracle; then the post-run audit
// continuity and end-state checks.
func tortureRun(t *testing.T, cycles, cycleLen, readers int, snapshots bool) core.Stats {
	p, err := progs.ByName(tortureProgram)
	if err != nil {
		t.Fatal(err)
	}
	scratch := loadEngine(t, p, 1)
	schedule := tortureSchedule(t, p, scratch, cycles, cycleLen)
	scratch.Close()
	oracle := runOracle(t, p, schedule)

	total := 0
	for _, b := range schedule {
		total += len(b)
	}

	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Workers: 4, Audit: trail})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tables := s.An.TableOrder

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Epoch readers: wait-free loads, each checked against the oracle,
	// with per-reader monotonicity of epoch seq and update count, and
	// the audit-before-publish ordering (observing updates=k implies
	// the trail already holds ≥ k records).
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			label := "reader"
			var lastSeq, lastUpd uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				v := s.Epoch()
				if v.Seq < lastSeq {
					t.Errorf("%s %d: epoch seq went backwards: %d after %d", label, r, v.Seq, lastSeq)
					return
				}
				if uint64(v.Stats.Updates) < lastUpd {
					t.Errorf("%s %d: update count went backwards: %d after %d",
						label, r, v.Stats.Updates, lastUpd)
					return
				}
				lastSeq, lastUpd = v.Seq, uint64(v.Stats.Updates)
				if trail.Total() < int64(v.Stats.Updates) {
					t.Errorf("%s %d: epoch %d published before its audit records (%d < %d)",
						label, r, v.Seq, trail.Total(), v.Stats.Updates)
					return
				}
				if !checkView(t, label, v, oracle, tables) {
					return
				}
				// The scalar wait-free readers must answer without
				// blocking too (values come from whatever epoch each
				// call loads, so only shape is asserted here).
				_ = s.Verdict(0)
				_ = s.Entries(p.BurstTable)
				_ = s.Generation()
				_ = s.DegradedTables()
				runtime.Gosched()
			}
		}(r)
	}

	// Stats monitor: the Statistics() overlay (cache atomics, unsound
	// count) must keep the counter partition intact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int
		for {
			select {
			case <-done:
				return
			default:
			}
			st := s.Statistics()
			if st.Updates != st.Forwarded+st.Recompilations+st.Rejected {
				t.Errorf("stats monitor: partition broken: %+v", st)
				return
			}
			if st.Updates < last {
				t.Errorf("stats monitor: updates went backwards: %d after %d", st.Updates, last)
				return
			}
			last = st.Updates
			if st.UnsoundDegraded != 0 {
				t.Errorf("stats monitor: %d unsound degraded verdicts", st.UnsoundDegraded)
				return
			}
			runtime.Gosched()
		}
	}()

	// Snapshotter: Snapshot taken mid-flight (RLock serializes it
	// against the writer, so it lands on a batch boundary) must restore
	// to a state the oracle recognizes — the prefix-consistency gate.
	if snapshots {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				data, err := s.Snapshot()
				if err != nil {
					t.Errorf("snapshotter: %v", err)
					return
				}
				restored, err := core.Restore(data, core.Options{Workers: 1})
				if err != nil {
					t.Errorf("snapshotter: restore: %v", err)
					return
				}
				ok := checkView(t, "snapshotter", restored.Epoch(), oracle, tables)
				restored.Close()
				if !ok {
					return
				}
			}
		}()
	}

	// The batch writer drives the schedule on the main goroutine.
	for _, batch := range schedule {
		for i, d := range s.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				t.Fatalf("live: update %s (%d) rejected: %v", batch[i], i, d.Err)
			}
		}
	}
	close(done)
	wg.Wait()

	// Post-run: the final epoch equals the oracle's final state, and
	// the audit trail is a gap-free transcript.
	final := s.Epoch()
	if final.Stats.Updates != total {
		t.Fatalf("final update count %d, schedule had %d", final.Stats.Updates, total)
	}
	checkView(t, "final", final, oracle, tables)
	recs := trail.Records()
	if len(recs) != total {
		t.Fatalf("audit trail has %d records for %d updates", len(recs), total)
	}
	for i, rec := range recs {
		if rec.Seq != i+1 {
			t.Fatalf("audit record %d has seq %d: sequence has a gap", i, rec.Seq)
		}
	}
	st := s.Statistics()
	if st.ArenaSweeps > 0 {
		t.Logf("arena swept %d nodes across %d sweeps under concurrency",
			st.ArenaSwept, st.ArenaSweeps)
	}
	return st
}

// TestTortureConcurrency is the smoke-sized torture run; it is part of
// the race tier (make race promotes it) and cheap enough for tier-1.
func TestTortureConcurrency(t *testing.T) {
	tortureRun(t, 1, 192, 3, true)
}

// TestTortureGOMAXPROCS re-runs the torture body across the
// GOMAXPROCS grid; the long tail of the grid (16) joins in long mode.
func TestTortureGOMAXPROCS(t *testing.T) {
	grid := []int{1, 4, 8}
	if !testing.Short() {
		grid = append(grid, 16)
	}
	for _, g := range grid {
		t.Run(gLabel(g), func(t *testing.T) {
			withGOMAXPROCS(t, g, func(t *testing.T) {
				tortureRun(t, 1, 96, 2, false)
			})
		})
	}
}

// TestTortureLong is the -short-guarded long mode: enough churn to
// cross the arena-sweep floor repeatedly, so sweeps run concurrently
// with the wait-free readers and the snapshotter.
func TestTortureLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long torture mode skipped with -short")
	}
	withGOMAXPROCS(t, 8, func(t *testing.T) {
		// The long run is sized to force arena sweeps under concurrency
		// (the sweep-safety claim exercised, not assumed): 4 diurnal
		// cycles of 512 updates cross the sweep floor per the
		// calibration in arena_test.go.
		st := tortureRun(t, 4, 512, 4, true)
		if st.ArenaSweeps == 0 {
			t.Fatalf("long schedule did not trigger an arena sweep (nodes %d): resize the workload", st.ArenaNodes)
		}
	})
}

func gLabel(g int) string { return "gomaxprocs-" + strconv.Itoa(g) }

// ---------------------------------------------------------------------------
// Satellite: property-based linearizability of Entries vs the audit
// trail. Every (entries, updates) pair observed mid-churn must equal
// replaying the audit prefix up to that epoch: fold insert/delete
// records with Seq ≤ updates over the baseline entry count.

type entriesObservation struct {
	updates int
	entries int
}

// TestEntriesLinearizableAgainstAudit churns one table while readers
// record epoch-consistent (entries, updates) observations, then checks
// every observation against an audit-prefix replay.
func TestEntriesLinearizableAgainstAudit(t *testing.T) {
	p, err := progs.ByName(tortureProgram)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		trail := obs.NewTrail(0)
		s, err := p.LoadWith(core.Options{Workers: 4, Audit: trail})
		if err != nil {
			t.Fatal(err)
		}
		// Representative config lands before the trail baseline is
		// taken, so the replay folds over a known starting count.
		if err := p.ApplyRepresentative(s); err != nil {
			t.Fatal(err)
		}
		baseUpdates := s.Epoch().Stats.Updates
		baseEntries := s.Entries(p.BurstTable)

		cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
			Kind: fuzz.FlapStorm, Table: p.BurstTable, Updates: 256, Seed: 40 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		observations := make([][]entriesObservation, 2)
		for r := range observations {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					v := s.Epoch()
					observations[r] = append(observations[r], entriesObservation{
						updates: v.Stats.Updates,
						entries: v.Entries(p.BurstTable),
					})
					runtime.Gosched()
				}
			}(r)
		}
		for _, batch := range cs.Batches() {
			for i, d := range s.ApplyBatch(batch) {
				if d.Kind == core.Rejected {
					t.Fatalf("seed %d: update %s (%d) rejected: %v", seed, batch[i], i, d.Err)
				}
			}
		}
		close(done)
		wg.Wait()
		s.Close()

		// Replay the audit prefix: entriesAt[k] is the table's entry
		// count after the first k churn updates, folded purely from the
		// trail's insert/delete records.
		recs := trail.Records()
		entriesAt := make(map[int]int, len(recs)+1)
		entriesAt[baseUpdates] = baseEntries
		count := baseEntries
		for _, rec := range recs {
			if rec.Seq <= baseUpdates {
				continue // representative-config prefix
			}
			if rec.Target == p.BurstTable && rec.Decision != "rejected" {
				switch kind, _, _ := strings.Cut(rec.Update, " "); kind {
				case "insert":
					count++
				case "delete":
					count--
				}
			}
			entriesAt[rec.Seq] = count
		}
		checked := 0
		for r, obsv := range observations {
			for _, o := range obsv {
				want, ok := entriesAt[o.updates]
				if !ok {
					t.Fatalf("seed %d reader %d: observed updates=%d matches no audit prefix",
						seed, r, o.updates)
				}
				if o.entries != want {
					t.Fatalf("seed %d reader %d: at updates=%d observed %d entries, audit replay says %d",
						seed, r, o.updates, o.entries, want)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("seed %d: readers recorded no observations", seed)
		}
	}
}

// ---------------------------------------------------------------------------
// Satellite: hot-swap torture. With the executor enabled, every epoch
// publication also compiles and hot-swaps an executable image. The
// property: concurrent packet executors racing the batch writer must
// only ever observe an image matching a published epoch — the image
// hash an executor loads must equal the sequential oracle's image hash
// at that epoch's update count (a torn or mid-batch swap would hash to
// a state the oracle never produced), and every packet must execute
// against the observed image without error.

// runImageOracle replays the schedule sequentially with the executor
// enabled and records the published image hash after every mutating
// call, keyed by update count.
func runImageOracle(t *testing.T, p *progs.Program, schedule [][]*controlplane.Update) map[int]uint64 {
	t.Helper()
	s, err := p.LoadWith(core.Options{Workers: 1, Exec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle := make(map[int]uint64, len(schedule)+1)
	record := func() {
		v := s.Epoch()
		img := v.Image()
		if img == nil {
			t.Fatalf("image oracle: epoch %d has no image with Exec enabled", v.Seq)
		}
		oracle[v.Stats.Updates] = img.Hash()
	}
	record()
	for _, batch := range schedule {
		for i, d := range s.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				t.Fatalf("image oracle: update %s (%d) rejected: %v", batch[i], i, d.Err)
			}
		}
		record()
	}
	return oracle
}

// TestTortureHotSwap races packet executors against the batch writer
// and checks every observed image against the sequential image oracle.
func TestTortureHotSwap(t *testing.T) {
	p, err := progs.ByName(tortureProgram)
	if err != nil {
		t.Fatal(err)
	}
	scratch := loadEngine(t, p, 1)
	schedule := tortureSchedule(t, p, scratch, 1, 128)
	scratch.Close()
	oracle := runImageOracle(t, p, schedule)

	s, err := p.LoadWith(core.Options{Workers: 4, Exec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A plausible-looking frame plus junk: execution outcome is not
	// asserted (the oracle covers semantics), only that every packet
	// runs to completion against a coherent image.
	packets := [][]byte{
		{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x00, 0x01, 0x02, 0x03,
			0x04, 0x05, 0x08, 0x00, 0x45, 0x00, 0x00, 0x14, 0x00, 0x00,
			0x00, 0x00, 0x40, 0x11, 0x00, 0x00, 0x0A, 0x00, 0x00, 0x01,
			0x0A, 0x00, 0x00, 0x02, 0x12, 0x34, 0x56, 0x78},
		{0xDE, 0xAD},
		{},
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			m := dpexec.NewMachine()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				v := s.Epoch()
				img := v.Image()
				if img == nil {
					t.Errorf("executor %d: epoch %d has no image", r, v.Seq)
					return
				}
				want, ok := oracle[v.Stats.Updates]
				if !ok {
					t.Errorf("executor %d: epoch %d: updates=%d is no sequential state", r, v.Seq, v.Stats.Updates)
					return
				}
				if got := img.Hash(); got != want {
					t.Errorf("executor %d: epoch %d (updates=%d): image hash %x, oracle %x",
						r, v.Seq, v.Stats.Updates, got, want)
					return
				}
				if _, err := m.Run(img, packets[i%len(packets)], uint16(i%512)); err != nil {
					t.Errorf("executor %d: packet execution trapped: %v", r, err)
					return
				}
				// The facade exec path must stay usable mid-churn too.
				if _, err := s.Exec(packets[0], 1); err != nil {
					t.Errorf("executor %d: Exec: %v", r, err)
					return
				}
				runtime.Gosched()
			}
		}(r)
	}

	for _, batch := range schedule {
		for i, d := range s.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				t.Fatalf("live: update %s (%d) rejected: %v", batch[i], i, d.Err)
			}
		}
	}
	close(done)
	wg.Wait()

	final := s.Epoch()
	img := final.Image()
	if img == nil {
		t.Fatal("final epoch has no image")
	}
	if want := oracle[final.Stats.Updates]; img.Hash() != want {
		t.Fatalf("final image hash %x, oracle %x", img.Hash(), want)
	}
}

// ---------------------------------------------------------------------------
// The GOMAXPROCS 1/4/8/16 equivalence re-run: a compact version of the
// equivalence matrix at each GOMAXPROCS value. Two comparisons per
// program: (a) the batch engine with a GOMAXPROCS-following pool
// (Workers:0) against the single-worker batch engine — exact stats and
// end-state equality (batch decisions are schedule-independent); and
// (b) the batch engine against per-update serial Apply — end-state
// equality plus matching rejection pattern (the batch theorems).

func TestMatricesAtGOMAXPROCS(t *testing.T) {
	names := []string{"fig3"}
	if !testing.Short() {
		names = append(names, "scion")
	}
	for _, g := range []int{1, 4, 8, 16} {
		t.Run(gLabel(g), func(t *testing.T) {
			withGOMAXPROCS(t, g, func(t *testing.T) {
				for _, name := range names {
					p, err := progs.ByName(name)
					if err != nil {
						t.Fatal(err)
					}
					seq := loadEngine(t, p, 1)
					one := loadEngine(t, p, 1)
					pool := loadEngine(t, p, 0)
					stream := makeStream(t, seq, uint64(g))
					for start := 0; start < len(stream); start += chunkSize {
						chunk := stream[start:min(start+chunkSize, len(stream))]
						for _, u := range chunk {
							seq.Apply(u)
						}
						oneDs := one.ApplyBatch(chunk)
						poolDs := pool.ApplyBatch(chunk)
						for i := range chunk {
							if oneDs[i].Kind != poolDs[i].Kind {
								t.Fatalf("%s: update %d: batch decisions diverge across pools: %s vs %s",
									name, start+i, oneDs[i], poolDs[i])
							}
						}
					}
					sameEndState(t, one, pool)
					sameEndState(t, seq, pool)
					sameStats(t, name, one.Statistics(), pool.Statistics())
					seq.Close()
					one.Close()
					pool.Close()
				}
			})
		})
	}
}
