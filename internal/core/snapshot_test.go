// Snapshot round-trip suite: Snapshot followed by Restore must yield an
// engine indistinguishable from the one that was saved — same installed
// configuration, same per-point verdicts, same specialized source, same
// outcome counters — on every catalog program, and the pair must then
// process further updates identically. FuzzSnapshot feeds the loader
// corrupted, truncated and mutated bytes: Restore must reject them with
// an error, never panic, because snapshots cross process and machine
// boundaries.
package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/p4/ast"
	"repro/internal/progs"
)

// TestSnapshotRoundTrip saves each catalog engine mid-stream and
// verifies the restored engine equals the original field for field,
// then replays the rest of the stream through both.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			s, err := p.LoadWith(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			stream := makeStream(t, s, 11)
			half := len(stream) / 2
			for _, u := range stream[:half] {
				s.Apply(u)
			}

			snap, err := s.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			r, err := core.Restore(snap, core.Options{})
			if err != nil {
				t.Fatalf("restore: %v", err)
			}

			// State equality at the restore point.
			sameEndState(t, s, r)
			if !reflect.DeepEqual(s.Cfg.State(), r.Cfg.State()) {
				t.Fatal("installed configuration diverged across the round trip")
			}
			ss, rs := s.Statistics(), r.Statistics()
			if ss.Updates != rs.Updates || ss.Forwarded != rs.Forwarded ||
				ss.Recompilations != rs.Recompilations || ss.Rejected != rs.Rejected {
				t.Fatalf("outcome counters diverged: %+v vs %+v", ss, rs)
			}
			if ss.Points != rs.Points || ss.Tables != rs.Tables {
				t.Fatalf("analysis shape diverged: %+v vs %+v", ss, rs)
			}

			// A second snapshot of the restored engine must describe the
			// same engine state (timings and cache warmth may differ, so
			// compare via a second restore, not byte equality).
			snap2, err := r.Snapshot()
			if err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			r2, err := core.Restore(snap2, core.Options{})
			if err != nil {
				t.Fatalf("re-restore: %v", err)
			}
			sameEndState(t, r, r2)

			// Replaying the remainder must keep the pair in lockstep.
			for i, u := range stream[half:] {
				sameDecision(t, half+i, s.Apply(u), r.Apply(u))
			}
			sameEndState(t, s, r)
		})
	}
}

// TestSnapshotRejectsTampering pins the integrity check: flipping any
// single byte of a valid snapshot must fail restore (the payload is
// checksummed), as must truncation at every section boundary class.
func TestSnapshotRejectsTampering(t *testing.T) {
	snap := fig3Snapshot(t)
	if _, err := core.Restore(nil, core.Options{}); err == nil {
		t.Fatal("restore of nil input succeeded")
	}
	for _, n := range []int{0, 1, 4, 11, 12, len(snap) / 2, len(snap) - 9, len(snap) - 1} {
		if n >= len(snap) {
			continue
		}
		if _, err := core.Restore(snap[:n], core.Options{}); err == nil {
			t.Fatalf("restore of %d-byte truncation succeeded", n)
		}
	}
	// Flip one byte in each region: magic, early payload, late payload,
	// checksum.
	for _, off := range []int{0, 13, len(snap) / 2, len(snap) - 4} {
		mut := bytes.Clone(snap)
		mut[off] ^= 0x40
		if _, err := core.Restore(mut, core.Options{}); err == nil {
			t.Fatalf("restore of snapshot with byte %d flipped succeeded", off)
		}
	}
}

func fig3Snapshot(t *testing.T) []byte {
	t.Helper()
	p := progs.Fig3()
	s, err := p.LoadWith(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range progs.Fig3Updates() {
		s.Apply(u)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// FuzzSnapshot throws arbitrary bytes at the loader. The contract under
// test: Restore returns an error for anything that is not a valid
// snapshot and never panics; when a mutation happens to survive the
// checksum (the fuzzer can recompute it), the restored engine must
// still be fully usable.
func FuzzSnapshot(f *testing.F) {
	p := progs.Fig3()
	s, err := p.LoadWith(core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	for _, u := range progs.Fig3Updates() {
		s.Apply(u)
	}
	valid, err := s.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("goflay-snap\x01"))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-8])
	mut := bytes.Clone(valid)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := core.Restore(data, core.Options{})
		if err != nil {
			return // rejected, as it should be for junk
		}
		// The loader accepted it: the engine must be coherent enough to
		// answer every read-only query and keep processing updates.
		st := r.Statistics()
		if st.Points <= 0 {
			t.Fatalf("restored engine reports %d points", st.Points)
		}
		_ = ast.Print(r.SpecializedProgram())
		for _, u := range progs.Fig3Updates() {
			r.Apply(u)
		}
	})
}
