// Cache-differential equivalence suite for the taint-keyed
// specialization-query cache: a cached engine must be observationally
// identical to an uncached one — same per-update decisions, same end
// state, same audit trail — for every catalog program, across
// fuzzer-generated update streams and worker counts. The cache memoizes
// verdicts, which the engine's determinism invariant makes pure
// functions of (point expression, dependency assignments); any
// divergence here is a soundness bug in the cache key or its
// invalidation. Run under -race this also proves the per-point way
// slices really are single-owner during a pass.
//
// The suite also proves warm-start snapshots: an engine resumed from a
// mid-stream snapshot must finish the stream exactly like the engine
// that never stopped, audit tail and sequence numbers included.
package core_test

import (
	"runtime"
	"slices"
	"sync"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/sym"
)

const cacheDiffSeeds = 2

// workerGrid is the engine pool sizes the differential runs over:
// serial, a mid pool, a pool matching the shard cap (single-core
// containers still get real interleaving under -race from these), and
// whatever GOMAXPROCS says. 8 is deliberately left to the GOMAXPROCS
// matrices (torture_test.go) — every grid entry here multiplies the
// two heaviest differential suites.
func workerGrid() []int {
	grid := []int{1, 4, 16}
	if n := runtime.GOMAXPROCS(0); !slices.Contains(grid, n) {
		grid = append(grid, n)
	}
	return grid
}

func loadDiff(t *testing.T, p *progs.Program, workers int, nocache bool) (*core.Specializer, *obs.Trail) {
	t.Helper()
	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Workers: workers, NoCache: nocache, Audit: trail})
	if err != nil {
		t.Fatalf("%s: load: %v", p.Name, err)
	}
	return s, trail
}

// normalize strips the audit fields that legitimately differ between
// engines answering the same stream: wall-clock time, the configured
// pool size, and which worker happened to re-prove a point. Everything
// else — sequence, target, decision, affected counts, per-point verdict
// flips, component lists, implementation changes — must match exactly.
func normalize(recs []obs.AuditRecord) []obs.AuditRecord {
	out := make([]obs.AuditRecord, len(recs))
	for i, r := range recs {
		r.ElapsedNS = 0
		r.Workers = 0
		r.Changes = slices.Clone(r.Changes)
		for j := range r.Changes {
			r.Changes[j].Worker = 0
		}
		out[i] = r
	}
	return out
}

func sameAudit(t *testing.T, label string, a, b []obs.AuditRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d audit records vs %d", label, len(a), len(b))
	}
	na, nb := normalize(a), normalize(b)
	for i := range na {
		if na[i].Seq != nb[i].Seq || na[i].Batch != nb[i].Batch ||
			na[i].Target != nb[i].Target || na[i].Update != nb[i].Update ||
			na[i].Decision != nb[i].Decision || na[i].Affected != nb[i].Affected ||
			!slices.Equal(na[i].Changes, nb[i].Changes) ||
			!slices.Equal(na[i].Components, nb[i].Components) ||
			na[i].ImplChange != nb[i].ImplChange || na[i].Err != nb[i].Err {
			t.Fatalf("%s: audit record %d diverged:\n  %+v\nvs\n  %+v", label, i, na[i], nb[i])
		}
	}
}

func sameStats(t *testing.T, label string, a, b core.Stats) {
	t.Helper()
	if a.Updates != b.Updates || a.Forwarded != b.Forwarded ||
		a.Recompilations != b.Recompilations || a.Rejected != b.Rejected {
		t.Fatalf("%s: outcome counters diverged: %+v vs %+v", label, a, b)
	}
}

// TestCacheMatchesUncached is the core differential: the same fuzzer
// stream through a cached and an uncached engine, per-update decisions
// compared field for field, audit trails record for record, end states
// byte for byte — for every catalog program, seed, and pool size.
func TestCacheMatchesUncached(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for _, workers := range workerGrid() {
				for seed := uint64(1); seed <= cacheDiffSeeds; seed++ {
					cached, cachedTrail := loadDiff(t, p, workers, false)
					plain, plainTrail := loadDiff(t, p, workers, true)
					for i, u := range makeStream(t, cached, seed) {
						sameDecision(t, i, cached.Apply(u), plain.Apply(u))
					}
					sameEndState(t, cached, plain)
					sameAudit(t, p.Name, cachedTrail.Records(), plainTrail.Records())
					cs, ps := cached.Statistics(), plain.Statistics()
					sameStats(t, p.Name, cs, ps)
					if ps.CacheHits != 0 || ps.CacheMisses != 0 {
						t.Fatalf("NoCache engine reports cache traffic: %+v", ps)
					}
					if cs.CacheHits+cs.CacheMisses == 0 {
						t.Fatalf("cached engine issued no cache queries")
					}
				}
			}
		})
	}
}

// TestCacheMatchesUncachedBatched runs the differential through the
// coalescing batch path, which reuses the same evaluation hot path and
// must therefore hit the same cache soundly.
func TestCacheMatchesUncachedBatched(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for _, workers := range workerGrid() {
				cached, _ := loadDiff(t, p, workers, false)
				plain, _ := loadDiff(t, p, workers, true)
				stream := makeStream(t, cached, 7)
				for start := 0; start < len(stream); start += chunkSize {
					chunk := stream[start:min(start+chunkSize, len(stream))]
					cds := cached.ApplyBatch(chunk)
					pds := plain.ApplyBatch(chunk)
					for i := range chunk {
						sameDecision(t, start+i, cds[i], pds[i])
					}
				}
				sameEndState(t, cached, plain)
				sameStats(t, p.Name, cached.Statistics(), plain.Statistics())
			}
		})
	}
}

// TestSnapshotResumeMatchesUninterrupted proves warm restarts: run half
// a stream, snapshot, restore into a fresh engine, finish the stream —
// and compare against an engine that ran the whole stream without
// stopping. Decisions, end state, outcome counters and the audit tail
// (with continuous sequence numbers) must all match.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= cacheDiffSeeds; seed++ {
				base, baseTrail := loadDiff(t, p, 1, false)
				stream := makeStream(t, base, seed)
				half := len(stream) / 2

				first, _ := loadDiff(t, p, 1, false)
				for i, u := range stream {
					d := base.Apply(u)
					if i < half {
						sameDecision(t, i, d, first.Apply(u))
					}
				}
				snap, err := first.Snapshot()
				if err != nil {
					t.Fatalf("snapshot: %v", err)
				}

				resumedTrail := obs.NewTrail(0)
				resumed, err := core.Restore(snap, core.Options{Workers: 1, Audit: resumedTrail})
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				baseRecs := baseTrail.Records()
				for i, u := range stream[half:] {
					d := resumed.Apply(u)
					// Replay the base engine's decision for the same
					// update out of its audit record to confirm the kind.
					if want := baseRecs[half+i].Decision; d.Kind.String() != want {
						t.Fatalf("resumed update %d: decision %s, uninterrupted engine decided %s",
							half+i, d.Kind, want)
					}
				}
				sameEndState(t, base, resumed)
				sameStats(t, p.Name, base.Statistics(), resumed.Statistics())
				sameAudit(t, p.Name, baseRecs[half:], resumedTrail.Records())
				for i, r := range resumedTrail.Records() {
					if r.Seq != half+i+1 {
						t.Fatalf("resumed audit record %d has seq %d, want %d (continuity across restore)",
							i, r.Seq, half+i+1)
					}
				}
			}
		})
	}
}

// TestCacheHitsOnStableFingerprints pins the mechanism the burst
// speedup rests on: past the overapproximation threshold a table's
// compiled fragment — and therefore its assignment fingerprint — stops
// changing with further inserts, so the taint map still routes the
// update to its points but every re-evaluation is answered from the
// cache. A tiny threshold makes the effect immediate.
func TestCacheHitsOnStableFingerprints(t *testing.T) {
	p := progs.Fig3()
	s, err := p.LoadWith(core.Options{OverapproxThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		e := &controlplane.TableEntry{
			Priority: i,
			Matches: []controlplane.FieldMatch{{
				Kind:  controlplane.MatchTernary,
				Value: sym.NewBV(48, uint64(0x1000+i)),
				Mask:  sym.AllOnes(48),
			}},
			Action: "set", Params: []sym.BV{sym.NewBV(16, uint64(i))},
		}
		u := &controlplane.Update{Kind: controlplane.InsertEntry, Table: "Ingress.eth_table", Entry: e}
		if d := s.Apply(u); d.Kind == core.Rejected {
			t.Fatalf("insert %d rejected: %v", i, d.Err)
		}
	}
	st := s.Statistics()
	if st.CacheHits == 0 {
		t.Fatalf("overapproximated inserts produced no cache hits: %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Fatalf("first visits must miss: %+v", st)
	}
	// Ten of the twelve inserts land past the threshold with a stable
	// fingerprint; their passes are all-hit, so hits must dominate.
	if st.CacheHits < st.CacheMisses {
		t.Fatalf("threshold-stable workload should be hit-dominated: %d hits vs %d misses",
			st.CacheHits, st.CacheMisses)
	}
}

// TestSnapshotUnderConcurrentBatches proves snapshot prefix
// consistency against a live writer: snapshots are taken from a
// separate goroutine while ApplyBatch churns the engine, and every
// captured snapshot must (a) land exactly on a batch boundary — the
// update count of the restored engine equals the cumulative length of
// some schedule prefix, never a torn mid-batch state — and (b) restore
// into an engine that, after replaying the remaining schedule suffix,
// is observationally identical to the uninterrupted engine, with the
// resumed audit trail continuing the sequence without a gap.
func TestSnapshotUnderConcurrentBatches(t *testing.T) {
	p, err := progs.ByName("nat44")
	if err != nil {
		t.Fatal(err)
	}
	scratch := loadEngine(t, p, 1)
	schedule := tortureSchedule(t, p, scratch, 1, 128)
	scratch.Close()

	// boundaries[k] is the schedule index whose prefix holds k updates.
	boundaries := make(map[int]int, len(schedule)+1)
	boundaries[0] = 0
	total := 0
	for i, b := range schedule {
		total += len(b)
		boundaries[total] = i + 1
	}

	live, liveTrail := loadDiff(t, p, 4, false)
	done := make(chan struct{})
	var snaps [][]byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			data, err := live.Snapshot()
			if err != nil {
				t.Errorf("snapshot mid-churn: %v", err)
				return
			}
			snaps = append(snaps, data)
			runtime.Gosched()
		}
	}()
	for _, batch := range schedule {
		for i, d := range live.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				t.Fatalf("update %s (%d) rejected: %v", batch[i], i, d.Err)
			}
		}
	}
	close(done)
	wg.Wait()
	if len(snaps) == 0 {
		t.Fatal("snapshotter captured nothing")
	}

	// Replay each distinct capture point (bounded: replays are the
	// expensive part, the boundary check is free and runs on all).
	liveRecs := liveTrail.Records()
	replayed := make(map[int]bool)
	for _, data := range snaps {
		resumedTrail := obs.NewTrail(0)
		resumed, err := core.Restore(data, core.Options{Workers: 4, Audit: resumedTrail})
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		k := resumed.Statistics().Updates
		idx, ok := boundaries[k]
		if !ok {
			t.Fatalf("snapshot captured %d updates: not a batch boundary (torn mid-batch state)", k)
		}
		if replayed[k] || len(replayed) >= 4 {
			resumed.Close()
			continue
		}
		replayed[k] = true
		for _, batch := range schedule[idx:] {
			resumed.ApplyBatch(batch)
		}
		sameEndState(t, live, resumed)
		sameStats(t, p.Name, live.Statistics(), resumed.Statistics())
		sameAudit(t, p.Name, liveRecs[k:], resumedTrail.Records())
		for i, r := range resumedTrail.Records() {
			if r.Seq != k+i+1 {
				t.Fatalf("resumed audit record %d has seq %d, want %d (continuity across restore)",
					i, r.Seq, k+i+1)
			}
		}
		resumed.Close()
	}
	t.Logf("checked %d snapshots (%d boundary points replayed)", len(snaps), len(replayed))
}
