// Equivalence suite for the parallel batched update engine: the
// parallel evaluation path and the coalescing batch path must be
// observationally identical to the sequential engine — same per-update
// decisions, same verdicts, byte-identical specialized source — for
// every catalog program, across fuzzer-generated update streams. Run
// under -race this doubles as the concurrency soundness proof of the
// worker pool.
//
// The suite lives in an external test package because it drives the
// engine through internal/progs (which imports core).
package core_test

import (
	"slices"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/p4/ast"
	"repro/internal/progs"
	"repro/internal/trace"
)

// equivSeeds is the number of fuzzer seeds per program. The container
// this suite grew up on is single-core, so the parallel engine is
// forced to a pool of parallelWorkers regardless of GOMAXPROCS.
const (
	equivSeeds      = 3
	parallelWorkers = 4
	streamLen       = 48
	chunkSize       = 7
)

func loadEngine(t *testing.T, p *progs.Program, workers int) *core.Specializer {
	t.Helper()
	s, err := p.LoadWith(core.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: load: %v", p.Name, err)
	}
	return s
}

func makeStream(t *testing.T, s *core.Specializer, seed uint64) []*controlplane.Update {
	t.Helper()
	stream, err := fuzz.New(s.An, seed).Stream(streamLen)
	if err != nil {
		t.Fatalf("stream(seed %d): %v", seed, err)
	}
	return stream
}

func source(s *core.Specializer) string { return ast.Print(s.SpecializedProgram()) }

// sameDecision asserts full observable equality of two decisions for
// the same update (everything except wall-clock timing).
func sameDecision(t *testing.T, i int, a, b *core.Decision) {
	t.Helper()
	if a.Kind != b.Kind {
		t.Fatalf("update %d (%s): kind %s vs %s", i, a.Update, a.Kind, b.Kind)
	}
	if a.AffectedPoints != b.AffectedPoints {
		t.Fatalf("update %d (%s): affected %d vs %d", i, a.Update, a.AffectedPoints, b.AffectedPoints)
	}
	if !slices.Equal(a.ChangedPoints, b.ChangedPoints) {
		t.Fatalf("update %d (%s): changed points %v vs %v", i, a.Update, a.ChangedPoints, b.ChangedPoints)
	}
	if !slices.Equal(a.Components, b.Components) {
		t.Fatalf("update %d (%s): components %v vs %v", i, a.Update, a.Components, b.Components)
	}
	if a.ImplementationChange != b.ImplementationChange {
		t.Fatalf("update %d (%s): impl change %q vs %q", i, a.Update, a.ImplementationChange, b.ImplementationChange)
	}
}

// sameEndState asserts the two engines ended in indistinguishable
// states: identical per-point verdicts, identical installed entry
// counts, and byte-identical specialized source.
func sameEndState(t *testing.T, a, b *core.Specializer) {
	t.Helper()
	for id := 0; id < a.Statistics().Points; id++ {
		if va, vb := a.Verdict(id), b.Verdict(id); va != vb {
			t.Fatalf("point %d: verdict %s vs %s", id, va, vb)
		}
	}
	for _, table := range a.An.TableOrder {
		if na, nb := a.Cfg.NumEntries(table), b.Cfg.NumEntries(table); na != nb {
			t.Fatalf("table %s: %d vs %d entries", table, na, nb)
		}
	}
	if sa, sb := source(a), source(b); sa != sb {
		t.Fatalf("specialized source diverged:\n--- engine A ---\n%s\n--- engine B ---\n%s", sa, sb)
	}
}

// TestParallelMatchesSerial replays the same fuzzer update stream
// through a Workers:1 engine and a pooled engine, asserting identical
// per-update decisions and end states. Verdicts are deliberately
// schedule- and RNG-independent (Dead and Const need exhaustive
// certificates; probe luck only moves within Live), so this equality is
// exact, not statistical.
func TestParallelMatchesSerial(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= equivSeeds; seed++ {
				serial := loadEngine(t, p, 1)
				par := loadEngine(t, p, parallelWorkers)
				for i, u := range makeStream(t, serial, seed) {
					sameDecision(t, i, serial.Apply(u), par.Apply(u))
				}
				sameEndState(t, serial, par)
				ss, sp := serial.Statistics(), par.Statistics()
				if ss.Forwarded != sp.Forwarded || ss.Recompilations != sp.Recompilations || ss.Rejected != sp.Rejected {
					t.Fatalf("seed %d: outcome counters diverged: %+v vs %+v", seed, ss, sp)
				}
			}
		})
	}
}

// TestBatchMatchesSequential chunks the same stream through ApplyBatch
// on a pooled engine and through per-update Apply on a serial engine.
// The end states must be identical; decisions are attributed at batch
// granularity, so the per-update checks are the batch theorems:
//
//  1. rejections match exactly, update for update;
//  2. a chunk whose sequential decisions all forward must batch to
//     all-Forward (no false recompilations);
//  3. a chunk with any batched Recompile must contain at least one
//     sequential Recompile (coalescing may hide transient changes, but
//     never invents one).
func TestBatchMatchesSequential(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= equivSeeds; seed++ {
				seq := loadEngine(t, p, 1)
				bat := loadEngine(t, p, parallelWorkers)
				stream := makeStream(t, seq, seed)
				for start := 0; start < len(stream); start += chunkSize {
					chunk := stream[start:min(start+chunkSize, len(stream))]
					seqDs := make([]*core.Decision, len(chunk))
					for i, u := range chunk {
						seqDs[i] = seq.Apply(u)
					}
					batDs := bat.ApplyBatch(chunk)
					if len(batDs) != len(chunk) {
						t.Fatalf("chunk at %d: %d decisions for %d updates", start, len(batDs), len(chunk))
					}
					seqRecompiled, batRecompiled := false, false
					for i := range chunk {
						if (seqDs[i].Kind == core.Rejected) != (batDs[i].Kind == core.Rejected) {
							t.Fatalf("update %d: rejection mismatch: %s vs %s", start+i, seqDs[i], batDs[i])
						}
						seqRecompiled = seqRecompiled || seqDs[i].Kind == core.Recompile
						batRecompiled = batRecompiled || batDs[i].Kind == core.Recompile
					}
					if batRecompiled && !seqRecompiled {
						t.Fatalf("chunk at %d: batch recompiled but sequential engine only forwarded", start)
					}
					if !seqRecompiled && batRecompiled {
						t.Fatalf("chunk at %d: all-forward chunk must batch to all-Forward", start)
					}
				}
				sameEndState(t, seq, bat)
			}
		})
	}
}

// TestTraceReplayBatchedPerBurst replays a generated control-plane
// workload (internal/trace: routing bursts amid NAT churn and policy
// changes) through both engines, batching exactly the way a real
// controller would: each routing burst becomes one ApplyBatch call,
// isolated events stay singletons. End states must match.
func TestTraceReplayBatchedPerBurst(t *testing.T) {
	events := trace.Generate(8*time.Minute, trace.Profile{
		BurstInterval: 90 * time.Second,
		BurstSize:     12,
		NATInterval:   5 * time.Second,
	})
	for _, name := range []string{"fig3", "scion"} {
		t.Run(name, func(t *testing.T) {
			p, err := progs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			seq := loadEngine(t, p, 1)
			bat := loadEngine(t, p, parallelWorkers)
			stream, err := fuzz.New(seq.An, 99).Stream(len(events))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(events); {
				j := i + 1
				if events[i].Class == trace.RoutingBurst {
					for j < len(events) && events[j].Class == trace.RoutingBurst && events[j].Burst == events[i].Burst {
						j++
					}
				}
				for _, u := range stream[i:j] {
					seq.Apply(u)
				}
				bat.ApplyBatch(stream[i:j])
				i = j
			}
			sameEndState(t, seq, bat)
			st := bat.Statistics()
			if st.BatchedUpdates != len(events) {
				t.Fatalf("batched updates = %d, want %d", st.BatchedUpdates, len(events))
			}
			if st.Forwarded+st.Recompilations+st.Rejected != st.Updates {
				t.Fatalf("outcome partition broken: %+v", st)
			}
		})
	}
}

// TestSingletonBatchExact: a batch of one update must be exactly the
// sequential decision — same kind, same changed points, same
// components — for a whole stream, on every catalog program.
func TestSingletonBatchExact(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			seq := loadEngine(t, p, 1)
			bat := loadEngine(t, p, parallelWorkers)
			for i, u := range makeStream(t, seq, 17) {
				sd := seq.Apply(u)
				bds := bat.ApplyBatch([]*controlplane.Update{u})
				if len(bds) != 1 {
					t.Fatalf("update %d: singleton batch returned %d decisions", i, len(bds))
				}
				sameDecision(t, i, sd, bds[0])
			}
			sameEndState(t, seq, bat)
		})
	}
}
