package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/dd"
	"repro/internal/flayerr"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// Engine snapshots: the full warm state of a Specializer serialized to
// bytes, so a controller can checkpoint a stream and warm-restart it —
// in another process — without replaying the control-plane history.
//
// A snapshot carries the program source, the engine options that shape
// verdicts (quality, overapproximation threshold, parser skipping), the
// installed configuration (controlplane.State), the cumulative decision
// counters, the verdict map, the per-point liveness witnesses, and the
// live query cache. Everything expression-valued travels through the
// canonical encoding (sym.EncodeExprs) or canonical hashes (sym.Canon),
// never builder pointers, which is what makes the bytes portable.
//
// Restore re-runs parsing, type-checking and the data-plane analysis —
// all deterministic, so points, taint and placeholders line up with the
// snapshotting engine — then installs the saved state instead of
// recomputing it: the initial-preprocessing query pass, the dominant
// open cost after analysis, is skipped entirely.
//
// Wire format: magic, then uvarint/varint-packed sections in fixed
// order, then an FNV-64a checksum of everything before it. The loader
// re-validates every field against the freshly built analysis (a
// snapshot is untrusted input) and returns errors — never panics — on
// corruption; FuzzSnapshot holds it to that.

// snapMagic identifies snapshot bytes; the trailing byte is the format
// version. Version 2 added the adaptive-precision sections: the
// degraded-table set (after the threshold) and three more cumulative
// counters (degradations, promotions, unsound degraded verdicts).
// Version 3 added the decision-diagram variable order (after the
// degraded set): atom names and widths in registration order, so a
// restored engine rebuilds its diagrams — they are never serialized —
// under the exact order the snapshotting engine walked.
var snapMagic = []byte("goflay-snap\x03")

// snapMaxWitnessVars bounds decoded witness tables against hostile
// length prefixes.
const snapMaxWitnessVars = 1 << 20

// snapWriter appends the primitive wire types.
type snapWriter struct{ buf []byte }

func (w *snapWriter) u(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *snapWriter) i(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *snapWriter) n(v int)    { w.u(uint64(v)) }
func (w *snapWriter) str(s string) {
	w.n(len(s))
	w.buf = append(w.buf, s...)
}
func (w *snapWriter) bytes(b []byte) {
	w.n(len(b))
	w.buf = append(w.buf, b...)
}
func (w *snapWriter) bv(v sym.BV) {
	w.u(uint64(v.W))
	w.u(v.Hi)
	w.u(v.Lo)
}

// snapReader walks snapshot bytes with sticky error state.
type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: %w: "+format,
			append([]any{flayerr.ErrSnapshotCorrupt}, args...)...)
	}
}

func (r *snapReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("truncated or malformed varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapReader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("truncated or malformed varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// n reads a length prefix, refusing anything the remaining buffer
// cannot possibly hold (each element costs at least one byte).
func (r *snapReader) n() int {
	v := r.u()
	if r.err == nil && v > uint64(len(r.buf)) {
		r.fail("length prefix %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (r *snapReader) str() string {
	n := r.n()
	if r.err != nil {
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *snapReader) bytes() []byte {
	n := r.n()
	if r.err != nil {
		return nil
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b
}

// bv reads a bitvector and enforces the package invariant that bits
// above the width are zero (arithmetic downstream depends on it).
func (r *snapReader) bv() sym.BV {
	w, hi, lo := r.u(), r.u(), r.u()
	if r.err != nil {
		return sym.BV{}
	}
	if w == 0 {
		if hi != 0 || lo != 0 {
			r.fail("zero-width bitvector with nonzero value")
		}
		return sym.BV{}
	}
	if w > sym.MaxWidth {
		r.fail("bitvector width %d exceeds %d", w, sym.MaxWidth)
		return sym.BV{}
	}
	v := sym.NewBV2(uint16(w), hi, lo)
	if v.Hi != hi || v.Lo != lo {
		r.fail("bitvector %x:%x overflows width %d", hi, lo, w)
		return sym.BV{}
	}
	return v
}

// Generation counts the state-changing updates the engine has applied
// (forwarded + recompiled; rejected updates leave state untouched). A
// session host snapshots on shutdown only when the generation moved
// since its last checkpoint — the snapshot-on-shutdown dirtiness hook.
// Restore preserves the counter, so generations are comparable across
// a warm restart.
func (s *Specializer) Generation() uint64 {
	if s.lockedReads {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return uint64(s.stats.Forwarded) + uint64(s.stats.Recompilations)
	}
	return s.loadEpoch().generation
}

// Snapshot serializes the engine's complete warm state. It takes the
// read lock, so it can run concurrently with other readers (and
// coherently between updates).
func (s *Specializer) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.source == "" {
		return nil, fmt.Errorf("core: snapshot: engine was not opened from source (use NewFromSource)")
	}

	w := &snapWriter{buf: append([]byte(nil), snapMagic...)}
	payloadStart := len(w.buf)

	w.str(s.Prog.Name)
	w.str(s.source)
	flags := uint64(0)
	if s.An.SkippedParser {
		flags |= 1
	}
	w.u(flags)
	w.u(uint64(s.quality))
	w.i(int64(s.Cfg.OverapproxThreshold))

	// The degraded-table set (adaptive precision controller): names with
	// causes, sorted, so a restored engine resumes with the same tables
	// pinned to the overapproximation and the repair loop re-armed.
	degraded := sortedKeys(s.degraded)
	w.n(len(degraded))
	for _, name := range degraded {
		w.str(name)
		w.str(s.degraded[name])
	}

	// The diagram core's variable order (dd.go). Diagrams rebuild from
	// the residues on restore; only the order — which fixes canonical
	// form and walk-witness determinism — travels. Empty when the core
	// is disabled.
	order := s.variableOrder()
	w.n(len(order))
	for _, a := range order {
		w.str(a.Name)
		w.u(uint64(a.Width))
	}

	writeConfigState(w, s.Cfg.State())

	// Cumulative counters, so sequence numbers (and with them audit
	// records) continue exactly where the snapshotting engine stopped.
	st := s.stats
	for _, v := range []int64{
		int64(st.Updates), int64(st.Forwarded), int64(st.Recompilations),
		int64(st.Rejected), int64(st.Batches), int64(st.BatchedUpdates),
		int64(st.Coalesced),
		int64(st.AnalysisTime), int64(st.PreprocessTime),
		int64(st.UpdateTime), int64(st.EvalTime),
		int64(st.Degradations), int64(st.Promotions), s.unsound.Load(),
	} {
		w.i(v)
	}

	w.n(len(s.verdicts))
	for _, v := range s.verdicts {
		w.u(uint64(v.Kind))
		w.bv(v.Val)
	}

	writeWitnesses(w, s.witnesses)
	if err := writeCache(w, s.cache); err != nil {
		return nil, err
	}

	sum := fnv.New64a()
	sum.Write(w.buf[payloadStart:])
	w.buf = sum.Sum(w.buf)
	return w.buf, nil
}

// writeConfigState serializes a controlplane.State. The State is
// already deterministically ordered, so identical configurations
// serialize identically.
func writeConfigState(w *snapWriter, st controlplane.State) {
	w.n(len(st.Tables))
	for _, ts := range st.Tables {
		w.str(ts.Name)
		w.n(len(ts.Entries))
		for _, e := range ts.Entries {
			w.i(int64(e.Priority))
			w.i(int64(e.Seq))
			w.n(len(e.Matches))
			for _, m := range e.Matches {
				w.u(uint64(m.Kind))
				w.bv(m.Value)
				w.bv(m.Mask)
				w.i(int64(m.PrefixLen))
				b := uint64(0)
				if m.Wildcard {
					b = 1
				}
				w.u(b)
			}
			w.str(e.Action)
			w.n(len(e.Params))
			for _, p := range e.Params {
				w.bv(p)
			}
		}
	}
	w.n(len(st.Defaults))
	for _, d := range st.Defaults {
		w.str(d.Table)
		w.str(d.Action.Name)
		w.n(len(d.Action.Params))
		for _, p := range d.Action.Params {
			w.bv(p)
		}
	}
	w.n(len(st.ValueSets))
	for _, vs := range st.ValueSets {
		w.str(vs.Name)
		w.n(len(vs.Members))
		for _, m := range vs.Members {
			w.bv(m.Value)
			w.bv(m.Mask)
		}
	}
	w.n(len(st.Registers))
	for _, rs := range st.Registers {
		w.str(rs.Name)
		w.bv(rs.Fill)
	}
	w.i(int64(st.Seq))
}

func readConfigState(r *snapReader) controlplane.State {
	var st controlplane.State
	nt := r.n()
	for i := 0; i < nt && r.err == nil; i++ {
		ts := controlplane.TableState{Name: r.str()}
		ne := r.n()
		for j := 0; j < ne && r.err == nil; j++ {
			e := controlplane.EntryState{Priority: int(r.i()), Seq: int(r.i())}
			nm := r.n()
			for k := 0; k < nm && r.err == nil; k++ {
				m := controlplane.FieldMatch{
					Kind:  controlplane.MatchKind(r.u()),
					Value: r.bv(),
					Mask:  r.bv(),
				}
				m.PrefixLen = int(r.i())
				m.Wildcard = r.u() != 0
				e.Matches = append(e.Matches, m)
			}
			e.Action = r.str()
			np := r.n()
			for k := 0; k < np && r.err == nil; k++ {
				e.Params = append(e.Params, r.bv())
			}
			ts.Entries = append(ts.Entries, e)
		}
		st.Tables = append(st.Tables, ts)
	}
	nd := r.n()
	for i := 0; i < nd && r.err == nil; i++ {
		d := controlplane.DefaultState{Table: r.str()}
		d.Action.Name = r.str()
		np := r.n()
		for k := 0; k < np && r.err == nil; k++ {
			d.Action.Params = append(d.Action.Params, r.bv())
		}
		st.Defaults = append(st.Defaults, d)
	}
	nv := r.n()
	for i := 0; i < nv && r.err == nil; i++ {
		vs := controlplane.ValueSetState{Name: r.str()}
		nm := r.n()
		for k := 0; k < nm && r.err == nil; k++ {
			vs.Members = append(vs.Members, controlplane.ValueSetMember{Value: r.bv(), Mask: r.bv()})
		}
		st.ValueSets = append(st.ValueSets, vs)
	}
	nr := r.n()
	for i := 0; i < nr && r.err == nil; i++ {
		st.Registers = append(st.Registers, controlplane.RegisterState{Name: r.str(), Fill: r.bv()})
	}
	st.Seq = int(r.i())
	return st
}

// writeWitnesses serializes the per-point liveness witnesses: one
// shared variable table (canonically encoded, sorted builder-
// independently by class/name/width) followed by per-point assignments
// referencing it by index.
func writeWitnesses(w *snapWriter, witnesses []sym.Env) {
	varIndex := make(map[*sym.Expr]int)
	var vars []*sym.Expr
	for _, env := range witnesses {
		for v := range env {
			if _, ok := varIndex[v]; !ok {
				varIndex[v] = 0 // placeholder; assigned after sorting
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Width < b.Width
	})
	for i, v := range vars {
		varIndex[v] = i
	}
	blob, _ := sym.EncodeExprs(vars) // vars are interned nodes, never nil
	w.bytes(blob)

	withWitness := 0
	for _, env := range witnesses {
		if len(env) > 0 {
			withWitness++
		}
	}
	w.n(withWitness)
	for id, env := range witnesses {
		if len(env) == 0 {
			continue
		}
		w.n(id)
		w.n(len(env))
		// Deterministic order via the sorted variable table.
		idxs := make([]int, 0, len(env))
		byIdx := make(map[int]sym.BV, len(env))
		for v, val := range env {
			idxs = append(idxs, varIndex[v])
			byIdx[varIndex[v]] = val
		}
		sort.Ints(idxs)
		for _, ix := range idxs {
			w.n(ix)
			w.bv(byIdx[ix])
		}
	}
}

func readWitnesses(r *snapReader, b *sym.Builder, points int) []sym.Env {
	blob := r.bytes()
	if r.err != nil {
		return nil
	}
	vars, err := sym.DecodeExprs(b, blob)
	if err != nil {
		r.fail("witness variable table: %v", err)
		return nil
	}
	if len(vars) > snapMaxWitnessVars {
		r.fail("witness variable table too large")
		return nil
	}
	for _, v := range vars {
		if v.Op != sym.OpVar {
			r.fail("witness table entry is not a variable")
			return nil
		}
	}
	out := make([]sym.Env, points)
	n := r.n()
	for i := 0; i < n && r.err == nil; i++ {
		id := int(r.u())
		if r.err != nil {
			return nil
		}
		if id >= points {
			r.fail("witness references point %d of %d", id, points)
			return nil
		}
		nv := r.n()
		env := make(sym.Env, nv)
		for k := 0; k < nv && r.err == nil; k++ {
			ix := int(r.u())
			val := r.bv()
			if r.err != nil {
				return nil
			}
			if ix >= len(vars) {
				r.fail("witness references variable %d of %d", ix, len(vars))
				return nil
			}
			if val.W != vars[ix].Width {
				r.fail("witness value width %d for variable of width %d", val.W, vars[ix].Width)
				return nil
			}
			env[vars[ix]] = val
		}
		out[id] = env
	}
	return out
}

// writeCache serializes the live query cache as canonical keys plus
// verdicts. Witness hints inside entries are not serialized — the
// per-point witness table already carries the current hints, and hints
// cannot change verdicts.
func writeCache(w *snapWriter, c *queryCache) error {
	if c == nil {
		w.n(0)
		return nil
	}
	withEntries := 0
	for _, ways := range c.points {
		if len(ways) > 0 {
			withEntries++
		}
	}
	w.n(withEntries)
	for id, ways := range c.points {
		if len(ways) == 0 {
			continue
		}
		w.n(id)
		w.n(len(ways))
		for _, e := range ways {
			w.u(e.key.expr.Hi)
			w.u(e.key.expr.Lo)
			w.u(e.key.dep)
			w.u(uint64(e.verdict.Kind))
			w.bv(e.verdict.Val)
		}
	}
	return nil
}

func readCache(r *snapReader, points int) *queryCache {
	c := newQueryCache(points)
	n := r.n()
	for i := 0; i < n && r.err == nil; i++ {
		id := int(r.u())
		if r.err != nil {
			return nil
		}
		if id >= points {
			r.fail("cache references point %d of %d", id, points)
			return nil
		}
		nw := r.n()
		if nw > cacheWays {
			r.fail("cache holds %d ways for one point (limit %d)", nw, cacheWays)
			return nil
		}
		for k := 0; k < nw && r.err == nil; k++ {
			key := cacheKey{expr: sym.Canon{Hi: r.u(), Lo: r.u()}, dep: r.u()}
			kind := VerdictKind(r.u())
			val := r.bv()
			if r.err != nil {
				return nil
			}
			if kind > VerdictVaries {
				r.fail("invalid verdict kind %d", kind)
				return nil
			}
			c.store(id, key, Verdict{Kind: kind, Val: val}, nil)
		}
	}
	return c
}

// Restore rebuilds a Specializer from Snapshot bytes. Parsing,
// type-checking and the data-plane analysis re-run (they are
// deterministic functions of the embedded source); the configuration,
// verdicts, witnesses and warm cache are installed from the snapshot,
// skipping the initial query pass. The snapshot dictates the
// verdict-shaping options (quality, threshold, parser skipping);
// runtime options — workers, cache enablement, observability — come
// from opts.
func Restore(data []byte, opts Options) (*Specializer, error) {
	if len(data) < len(snapMagic)+8 {
		return nil, fmt.Errorf("core: %w: input too short", flayerr.ErrSnapshotCorrupt)
	}
	for i, b := range snapMagic {
		if data[i] != b {
			return nil, fmt.Errorf("core: %w: bad magic (not a goflay snapshot, or wrong version)",
				flayerr.ErrSnapshotCorrupt)
		}
	}
	payload := data[len(snapMagic) : len(data)-8]
	sum := fnv.New64a()
	sum.Write(payload)
	if got := binary.BigEndian.Uint64(data[len(data)-8:]); got != sum.Sum64() {
		return nil, fmt.Errorf("core: %w: checksum mismatch", flayerr.ErrSnapshotCorrupt)
	}

	r := &snapReader{buf: payload}
	name := r.str()
	source := r.str()
	flags := r.u()
	quality := Quality(r.u())
	threshold := int(r.i())
	ndeg := r.n()
	degraded := make(map[string]string, ndeg)
	for i := 0; i < ndeg && r.err == nil; i++ {
		degraded[r.str()] = r.str()
	}
	norder := r.n()
	order := make([]dd.Atom, 0, norder)
	for i := 0; i < norder && r.err == nil; i++ {
		a := dd.Atom{Name: r.str(), Width: uint16(r.u())}
		if a.Width < 1 || a.Width > sym.MaxWidth {
			return nil, fmt.Errorf("core: %w: atom %q has width %d",
				flayerr.ErrSnapshotCorrupt, a.Name, a.Width)
		}
		order = append(order, a)
	}
	if r.err != nil {
		return nil, r.err
	}
	if quality > QualityNone {
		return nil, fmt.Errorf("core: %w: invalid quality %d", flayerr.ErrSnapshotCorrupt, quality)
	}

	root := opts.Trace.Start("restore", 0)
	defer opts.Trace.End(root)
	t0 := time.Now()
	sp := opts.Trace.Start("parse", root)
	prog, err := parser.Parse(name, source)
	opts.Trace.End(sp)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: embedded program: %w", err)
	}
	sp = opts.Trace.Start("typecheck", root)
	info, err := typecheck.Check(prog)
	opts.Trace.End(sp)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: embedded program: %w", err)
	}
	an, err := dataplane.Analyze(prog, info, dataplane.Options{
		SkipParser: flags&1 != 0,
		Trace:      opts.Trace,
		Parent:     root,
		Metrics:    opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: embedded program: %w", err)
	}
	analysisTime := time.Since(t0)

	cfg := controlplane.NewConfig(an)
	cfg.OverapproxThreshold = threshold
	cfg.SetObserver(opts.Metrics)
	if err := cfg.SetState(readConfigState(r)); err != nil {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}

	// Re-pin the degraded tables before initState so their assignments
	// compile overapproximated — the state the saved verdicts were
	// computed under.
	for tname := range degraded {
		if an.Tables[tname] == nil {
			return nil, fmt.Errorf("core: %w: degraded table %q not in program",
				flayerr.ErrSnapshotCorrupt, tname)
		}
		cfg.ForceOverapprox(tname, true)
	}

	s := &Specializer{
		Prog:        prog,
		Info:        info,
		An:          an,
		Cfg:         cfg,
		source:      source,
		impls:       make(map[string]*tableImpl),
		quality:     quality,
		workers:     opts.Workers,
		lockedReads: opts.LockedReads,
		exec:        opts.Exec,
		trace:       opts.Trace,
		audit:       opts.Audit,
		met:         newCoreMetrics(opts.Metrics),
		symMet:      sym.NewSolverMetrics(opts.Metrics),
		repair:      opts.RepairInterval,
		closedCh:    make(chan struct{}),
	}
	if len(degraded) > 0 {
		s.degraded = degraded
	}
	if !opts.NoDD {
		if len(order) > 0 {
			s.ddc = newDDCore(an, order)
		} else {
			// Snapshot from a core-disabled engine: derive a fresh order.
			s.ddc = newDDCore(an, nil)
		}
		s.roDD.Store(s.ddc)
	}

	var counters [14]int64
	for i := range counters {
		counters[i] = r.i()
	}
	if r.err != nil {
		return nil, r.err
	}

	t1 := time.Now()
	rsp := s.trace.Start("reinstall", root)
	if err := s.initState(); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}

	nv := r.n()
	if r.err != nil {
		return nil, r.err
	}
	if nv != len(an.Points) {
		return nil, fmt.Errorf("core: %w: %d verdicts for %d program points",
			flayerr.ErrSnapshotCorrupt, nv, len(an.Points))
	}
	for i := 0; i < nv; i++ {
		kind := VerdictKind(r.u())
		val := r.bv()
		if r.err != nil {
			return nil, r.err
		}
		if kind > VerdictVaries {
			return nil, fmt.Errorf("core: %w: invalid verdict kind %d", flayerr.ErrSnapshotCorrupt, kind)
		}
		s.verdicts[i] = Verdict{Kind: kind, Val: val}
	}

	if w := readWitnesses(r, an.Builder, len(an.Points)); r.err == nil {
		s.witnesses = w
	}
	cache := readCache(r, len(an.Points))
	if r.err != nil {
		return nil, r.err
	}
	if !opts.NoCache {
		s.cache = cache
		s.roCache.Store(cache)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("core: %w: %d trailing bytes", flayerr.ErrSnapshotCorrupt, len(r.buf))
	}

	// Installed implementations: at rest the engine's invariant is
	// cur.equal(ideal) (Apply adopts the ideal on every change and
	// equal() compares every field), so rebuilding from the restored
	// verdicts reproduces them exactly.
	for tname := range an.Tables {
		s.impls[tname] = s.idealImpl(tname)
	}
	s.trace.End(rsp)

	s.met.points.Set(int64(len(an.Points)))
	s.met.tables.Set(int64(len(an.Tables)))
	if s.cache != nil {
		s.met.cacheEntries.Set(s.cache.size.Load())
	}
	s.stats = Stats{
		Points:         len(an.Points),
		Tables:         len(an.Tables),
		AnalysisTime:   analysisTime,
		PreprocessTime: time.Since(t1),
		Workers:        opts.Workers,
		Updates:        int(counters[0]),
		Forwarded:      int(counters[1]),
		Recompilations: int(counters[2]),
		Rejected:       int(counters[3]),
		Batches:        int(counters[4]),
		BatchedUpdates: int(counters[5]),
		Coalesced:      int(counters[6]),
		UpdateTime:     time.Duration(counters[9]),
		EvalTime:       time.Duration(counters[10]),
		Degradations:   int(counters[11]),
		Promotions:     int(counters[12]),
		DegradedTables: len(degraded),
	}
	s.unsound.Store(counters[13])
	s.met.degradedTables.Set(int64(len(degraded)))
	// Sequence numbers continue where the snapshotting engine stopped,
	// and the restored state is published as the engine's first epoch
	// before it escapes.
	s.co.seq.Store(int64(s.stats.Updates))
	s.publish()
	// A restored engine with degraded tables resumes repair where the
	// snapshotting one left off.
	s.ensureRepairLocked()
	return s, nil
}
