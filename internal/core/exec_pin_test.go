// PinnedExec suite: batch-level image pinning on the exec path. A pin
// must freeze one program+configuration cut for its whole lifetime —
// control-plane churn after PinExec is invisible to the pin and visible
// to the next one — and the pin must be the cheap way to stream packets
// (no per-packet epoch load or machine rental).
package core_test

import (
	"errors"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/flayerr"
	"repro/internal/progs"
	"repro/internal/sym"
)

// fig3Packet builds an ethernet frame (dst, src, type) for fig3's
// parser.
func fig3Packet(dst uint64) []byte {
	pkt := make([]byte, 14)
	for i := 0; i < 6; i++ {
		pkt[i] = byte(dst >> (uint(5-i) * 8))
	}
	pkt[12], pkt[13] = 0x08, 0x00
	return pkt
}

// dropAll is a full-wildcard ternary entry (mask 0 matches every dst).
func dropAll() *controlplane.Update {
	return &controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ingress.eth_table",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind:  controlplane.MatchTernary,
				Value: sym.NewBV(48, 0),
				Mask:  sym.NewBV(48, 0),
			}},
			Action: "drop",
		},
	}
}

func TestPinnedExecFreezesImage(t *testing.T) {
	s, err := progs.Fig3().LoadWith(core.Options{Exec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pkt := fig3Packet(0xbeef)

	before, err := s.Exec(pkt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before.Dropped {
		t.Fatal("default noop config should not drop")
	}

	pin, err := s.PinExec()
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()

	// The configuration changes under the pin: everything now drops.
	if d := s.Apply(dropAll()); d.Kind == core.Rejected {
		t.Fatalf("drop-all rejected: %v", d.Err)
	}
	after, err := s.Exec(pkt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Dropped {
		t.Fatal("drop-all config should drop")
	}

	// The pin still executes the pre-churn cut, for every packet of the
	// stream; a fresh pin sees the new cut.
	for i := 0; i < 16; i++ {
		res, err := pin.Run(fig3Packet(uint64(0xbe00+i)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped {
			t.Fatalf("packet %d: pinned image saw the post-pin update", i)
		}
	}
	fresh, err := s.PinExec()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if res, err := fresh.Run(pkt, 1); err != nil || !res.Dropped {
		t.Fatalf("fresh pin: %+v, %v (want the drop-all cut)", res, err)
	}

	// Close is idempotent.
	pin.Close()
	pin.Close()
}

func TestPinnedExecRequiresExec(t *testing.T) {
	s, err := progs.Fig3().Load()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.PinExec(); !errors.Is(err, flayerr.ErrExecDisabled) {
		t.Fatalf("PinExec without Options.Exec = %v, want ErrExecDisabled", err)
	}
}

// BenchmarkExecPinned isolates what the pin buys on a packet stream:
// Exec pays the epoch load and machine rental per packet, the pin pays
// them once.
func BenchmarkExecPinned(b *testing.B) {
	s, err := progs.Fig3().LoadWith(core.Options{Exec: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for _, u := range progs.Fig3Updates() {
		if d := s.Apply(u); d.Kind == core.Rejected {
			b.Fatal(d.Err)
		}
	}
	pkt := fig3Packet(0xbeef)

	b.Run("per-packet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(pkt, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pinned", func(b *testing.B) {
		pin, err := s.PinExec()
		if err != nil {
			b.Fatal(err)
		}
		defer pin.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pin.Run(pkt, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
