// Churn suite: the trace-driven update patterns (diurnal drift,
// route-flap storms, incremental ACL rollout, delete-heavy GC) replayed
// against the production-shaped catalog programs. For each program ×
// pattern the batch path replays the stream exactly the way a
// controller would push it (one ApplyBatch per declared batch) and must
// be observationally identical to the sequential engine; the pattern's
// declared steady-state invariant must hold on both; and the audit
// trail must be a gapless transcript. This is the engine's regression
// battery for sustained, realistic reconfiguration — the behavior
// Fig. 1 argues specialization must survive.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/progs"
)

// churnLen is the per-pattern stream length in the matrix. The soak
// tier (make soak-churn) runs the same patterns several orders of
// magnitude longer through flayd.
const churnLen = 64

// churnPrograms are the production-shaped programs the churn patterns
// model: NAT session churn, LB connection affinity churn, tunnel
// endpoint churn.
func churnPrograms(t *testing.T) []*progs.Program {
	t.Helper()
	var out []*progs.Program
	for _, name := range []string{"nat44", "l4lb", "tunnelterm"} {
		p, err := progs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestChurnPatternsMatrix: program × pattern, sequential vs
// controller-shaped batches, with auditing on the batch engine.
func TestChurnPatternsMatrix(t *testing.T) {
	for _, p := range churnPrograms(t) {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for ki, kind := range fuzz.PatternKinds() {
				// Rotate the batch engine's pool across the shard-spanning
				// worker grid so the matrix exercises 4-, 8-, and 16-way
				// shard scheduling, not one fixed pool size.
				churnWorkers := []int{parallelWorkers, 8, 16}[ki%3]
				t.Run(kind.String(), func(t *testing.T) {
					seq := loadEngine(t, p, 1)
					trail := obs.NewTrail(0)
					bat, err := p.LoadWith(core.Options{Workers: churnWorkers, Audit: trail})
					if err != nil {
						t.Fatal(err)
					}
					if err := p.ApplyRepresentative(seq); err != nil {
						t.Fatal(err)
					}
					if err := p.ApplyRepresentative(bat); err != nil {
						t.Fatal(err)
					}
					before := seq.Cfg.NumEntries(p.BurstTable)

					cs, err := fuzz.Churn(seq.An, fuzz.ChurnSpec{
						Kind: kind, Table: p.BurstTable, Updates: churnLen, Seed: uint64(kind)*31 + 7,
					})
					if err != nil {
						t.Fatal(err)
					}
					for i, u := range cs.Updates {
						if d := seq.Apply(u); d.Kind == core.Rejected {
							t.Fatalf("sequential update %d (%s) rejected: %v", i, u, d.Err)
						}
					}
					applied := 0
					for _, batch := range cs.Batches() {
						for i, d := range bat.ApplyBatch(batch) {
							if d.Kind == core.Rejected {
								t.Fatalf("batched update %d (%s) rejected: %v", applied+i, batch[i], d.Err)
							}
						}
						applied += len(batch)
					}
					if applied != churnLen {
						t.Fatalf("batches covered %d of %d updates", applied, churnLen)
					}

					sameEndState(t, seq, bat)
					for _, s := range []*core.Specializer{seq, bat} {
						if err := cs.CheckInvariant(s.Cfg.NumEntries(p.BurstTable) - before); err != nil {
							t.Fatal(err)
						}
					}

					// The audit trail must transcribe every update —
					// representative config plus churn — with gapless
					// sequence numbers.
					st := bat.Statistics()
					if trail.Total() != int64(st.Updates) {
						t.Fatalf("audit total %d, engine processed %d", trail.Total(), st.Updates)
					}
					recs := trail.Records()
					for i := 1; i < len(recs); i++ {
						if recs[i].Seq != recs[i-1].Seq+1 {
							t.Fatalf("audit seq gap: %d then %d", recs[i-1].Seq, recs[i].Seq)
						}
					}
					if len(recs) > 0 && int64(recs[len(recs)-1].Seq) != trail.Total() {
						t.Fatalf("last audit seq %d, total %d", recs[len(recs)-1].Seq, trail.Total())
					}
				})
			}
		})
	}
}

// TestChurnSnapshotDegradedRoundTrip: under each production-shaped
// program, run churn, degrade the churned table, snapshot, and restore:
// the degraded set must survive (the restore re-pins the table before
// compiling), promotion must be sound, and the restored engine must be
// indistinguishable from the original.
func TestChurnSnapshotDegradedRoundTrip(t *testing.T) {
	for _, p := range churnPrograms(t) {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			s, err := p.LoadWith(preciseOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				t.Fatal(err)
			}
			cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
				Kind: fuzz.Diurnal, Table: p.BurstTable, Updates: 32, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, u := range cs.Updates {
				if d := s.Apply(u); d.Kind == core.Rejected {
					t.Fatalf("churn update %d rejected: %v", i, d.Err)
				}
			}
			if err := s.Degrade(p.BurstTable); err != nil {
				t.Fatal(err)
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := core.Restore(snap, preciseOpts())
			if err != nil {
				t.Fatal(err)
			}
			if got := restored.DegradedTables(); len(got) != 1 || got[0] != p.BurstTable {
				t.Fatalf("restored DegradedTables() = %v, want [%s]", got, p.BurstTable)
			}
			if !restored.Cfg.Overapproximated(p.BurstTable) {
				t.Fatalf("restored %s not pinned to overapproximation", p.BurstTable)
			}
			for _, eng := range []*core.Specializer{s, restored} {
				if unsound, err := eng.PromoteAll(); err != nil || unsound != 0 {
					t.Fatalf("PromoteAll: unsound=%d err=%v", unsound, err)
				}
			}
			sameEndState(t, s, restored)
			if st := restored.Statistics(); st.UnsoundDegraded != 0 {
				t.Fatalf("UnsoundDegraded = %d", st.UnsoundDegraded)
			}
		})
	}
}
