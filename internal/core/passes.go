package core

import (
	"repro/internal/dataplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// SpecializedProgram rebuilds the program with every specialization the
// current verdicts permit: dead-branch elimination, constant
// propagation, table inlining, dead-action removal, match-kind
// narrowing, empty-table removal, select-case pruning and parser-tail
// pruning (paper §3, §4.1). The original program is never mutated.
func (s *Specializer) SpecializedProgram() *ast.Program {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.specializedProgramLocked()
}

// specializedProgramLocked is SpecializedProgram with the lock already
// held — in either mode: the rewriter only reads. The image builder
// calls it from inside publish(), under the write lock.
func (s *Specializer) specializedProgramLocked() *ast.Program {
	sp := s.trace.Start("pass", 0)
	defer s.trace.End(sp)
	if s.quality == QualityNone {
		return s.Prog
	}
	r := &rewriter{s: s}
	r.prepare()
	return r.program()
}

type branchVerdicts struct {
	thenPoints, elsePoints []int
}

type rewriter struct {
	s *Specializer

	// branch verdicts grouped per if node (an if inside a shared action
	// body yields one point per execution context; a branch is dead
	// only if every context says so).
	branches map[*ast.IfStmt]*branchVerdicts
	// constAssigns maps assignments whose RHS is the same constant in
	// every context.
	constAssigns map[*ast.AssignStmt]sym.BV
	// tableImpl per qualified table name (current installed impls).
	impls map[string]*tableImpl
	// deadCases maps parser/state to the set of dead case indices.
	deadCases map[string]map[int]bool
	// usedHeaders is the set of header-instance paths accessed by the
	// program outside parser extracts (parser-tail pruning).
	usedHeaders map[string]bool

	control *ast.ControlDecl
}

func (r *rewriter) prepare() {
	s := r.s
	r.branches = make(map[*ast.IfStmt]*branchVerdicts)
	r.constAssigns = make(map[*ast.AssignStmt]sym.BV)
	r.deadCases = make(map[string]map[int]bool)
	r.impls = make(map[string]*tableImpl, len(s.impls))
	for name, impl := range s.impls {
		r.impls[name] = impl
	}

	assignPoints := make(map[*ast.AssignStmt][]int)
	for _, p := range s.An.Points {
		switch p.Kind {
		case dataplane.PointIfBranch:
			bv := r.branches[p.If]
			if bv == nil {
				bv = &branchVerdicts{}
				r.branches[p.If] = bv
			}
			if p.ThenBranch {
				bv.thenPoints = append(bv.thenPoints, p.ID)
			} else {
				bv.elsePoints = append(bv.elsePoints, p.ID)
			}
		case dataplane.PointAssignValue:
			assignPoints[p.Assign] = append(assignPoints[p.Assign], p.ID)
		case dataplane.PointSelectCase:
			key := p.Control + "." + p.ParserState
			if r.deadCases[key] == nil {
				r.deadCases[key] = make(map[int]bool)
			}
			// A case is dead only if dead in every traversal context;
			// initialise true and clear on any live context.
			if _, seen := r.deadCases[key][p.CaseIndex]; !seen {
				r.deadCases[key][p.CaseIndex] = true
			}
			if s.verdicts[p.ID].Kind != VerdictDead {
				r.deadCases[key][p.CaseIndex] = false
			}
		}
	}
	for asg, ids := range assignPoints {
		allConst := true
		var val sym.BV
		for i, id := range ids {
			v := s.verdicts[id]
			if v.Kind != VerdictConst || (i > 0 && v.Val != val) {
				allConst = false
				break
			}
			val = v.Val
		}
		if allConst && len(ids) > 0 {
			r.constAssigns[asg] = val
		}
	}
	// A table whose hit result feeds a live two-way branch must keep its
	// apply site: force-keep it even if it would otherwise be inlined.
	for _, cd := range s.Prog.Controls {
		ast.WalkStmts(cd.Apply, func(st ast.Stmt) {
			ifs, ok := st.(*ast.IfStmt)
			if !ok {
				return
			}
			m, ok := ifs.Cond.(*ast.Member)
			if !ok || m.Name != "hit" {
				return
			}
			call, ok := m.X.(*ast.CallExpr)
			if !ok {
				return
			}
			inner, ok := call.Fun.(*ast.Member)
			if !ok || inner.Name != "apply" {
				return
			}
			id, ok := inner.X.(*ast.Ident)
			if !ok {
				return
			}
			if r.branchDead(ifs, true) || r.branchDead(ifs, false) {
				return
			}
			qname := cd.Name + "." + id.Name
			if impl := r.impls[qname]; impl != nil && (impl.removed || impl.inlineParams != nil) {
				keep := *impl
				keep.removed = false
				keep.inlineParams = nil
				r.impls[qname] = &keep
			}
		})
	}
}

func (r *rewriter) branchDead(ifs *ast.IfStmt, thenBranch bool) bool {
	bv := r.branches[ifs]
	if bv == nil {
		return false
	}
	ids := bv.thenPoints
	if !thenBranch {
		ids = bv.elsePoints
	}
	if len(ids) == 0 {
		return false
	}
	for _, id := range ids {
		if r.s.verdicts[id].Kind != VerdictDead {
			return false
		}
	}
	return true
}

// computeUsedHeadersFrom collects header instances referenced anywhere
// outside extract statements: in (specialized) control bodies, table
// keys, action bodies, and the original parser's select expressions.
// Extracted-but-unused headers can be reclassified as payload (§3,
// parser-tail pruning).
func (r *rewriter) computeUsedHeadersFrom(controls []*ast.ControlDecl) {
	r.usedHeaders = make(map[string]bool)
	markExpr := func(e ast.Expr) {
		ast.WalkExprs(e, func(sub ast.Expr) {
			if path, ok := typecheck.FieldPath(sub); ok {
				r.usedHeaders[path] = true
			}
			if call, ok := sub.(*ast.CallExpr); ok {
				if m, ok := call.Fun.(*ast.Member); ok && (m.Name == "isValid" || m.Name == "setValid" || m.Name == "setInvalid") {
					if path, ok := typecheck.FieldPath(m.X); ok {
						r.usedHeaders[path] = true
					}
				}
			}
		})
	}
	var markStmt func(st ast.Stmt)
	markStmt = func(st ast.Stmt) {
		ast.WalkStmts(st, func(inner ast.Stmt) {
			switch inner := inner.(type) {
			case *ast.AssignStmt:
				markExpr(inner.LHS)
				markExpr(inner.RHS)
			case *ast.IfStmt:
				markExpr(inner.Cond)
			case *ast.VarDecl:
				if inner.Init != nil {
					markExpr(inner.Init)
				}
			case *ast.CallStmt:
				if m, ok := inner.Call.Fun.(*ast.Member); ok && m.Name == "extract" {
					return // extracts themselves don't count as uses
				}
				markExpr(inner.Call)
			}
		})
	}
	for _, cd := range controls {
		for _, a := range cd.Actions {
			markStmt(a.Body)
		}
		for _, t := range cd.Tables {
			for _, k := range t.Keys {
				markExpr(k.Expr)
			}
		}
		markStmt(cd.Apply)
	}
	for _, pd := range r.s.Prog.Parsers {
		for _, st := range pd.States {
			for _, e := range st.Trans.Select {
				markExpr(e)
			}
		}
	}
}

// headerUsed reports whether the header instance at path (or any of its
// fields) is referenced.
func (r *rewriter) headerUsed(path string) bool {
	if r.usedHeaders[path] {
		return true
	}
	prefix := path + "."
	for p := range r.usedHeaders {
		if len(p) > len(prefix) && p[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Program rebuild

func (r *rewriter) program() *ast.Program {
	src := r.s.Prog
	out := &ast.Program{
		Name:     src.Name + ".specialized",
		Typedefs: src.Typedefs,
		Consts:   src.Consts,
		Headers:  src.Headers,
		Structs:  src.Structs,
	}
	// Controls first: parser-tail pruning keys off the uses that remain
	// after table removal and dead-branch elimination.
	for _, cd := range src.Controls {
		out.Controls = append(out.Controls, r.controlDecl(cd))
	}
	r.computeUsedHeadersFrom(out.Controls)
	for _, pd := range src.Parsers {
		out.Parsers = append(out.Parsers, r.parserDecl(pd))
	}
	return out
}

func (r *rewriter) parserDecl(pd *ast.ParserDecl) *ast.ParserDecl {
	out := &ast.ParserDecl{
		Name:      pd.Name,
		Params:    pd.Params,
		ValueSets: pd.ValueSets,
		TokPos:    pd.TokPos,
	}
	for _, st := range pd.States {
		out.States = append(out.States, r.state(pd, st))
	}
	return out
}

func (r *rewriter) state(pd *ast.ParserDecl, st *ast.State) *ast.State {
	out := &ast.State{Name: st.Name, TokPos: st.TokPos}
	for _, s := range st.Stmts {
		if call, ok := s.(*ast.CallStmt); ok {
			if m, ok := call.Call.Fun.(*ast.Member); ok && m.Name == "extract" {
				if path, ok := typecheck.FieldPath(call.Call.Args[0]); ok && !r.headerUsed(path) {
					continue // parser-tail pruning: header is payload
				}
			}
		}
		out.Stmts = append(out.Stmts, s)
	}
	tr := st.Trans
	if tr.Select == nil {
		out.Trans = tr
		return out
	}
	dead := r.deadCases[pd.Name+"."+st.Name]
	var cases []ast.SelectCase
	for i, cs := range tr.Cases {
		if dead != nil && dead[i] {
			continue
		}
		cases = append(cases, cs)
	}
	switch {
	case len(cases) == 0:
		out.Trans = ast.Transition{Next: "reject", TokPos: tr.TokPos}
	case len(cases) == 1 && cases[0].Keysets[0].Kind == ast.KeysetDefault:
		out.Trans = ast.Transition{Next: cases[0].Next, TokPos: tr.TokPos}
	default:
		out.Trans = ast.Transition{Select: tr.Select, Cases: cases, TokPos: tr.TokPos}
	}
	return out
}

func (r *rewriter) controlDecl(cd *ast.ControlDecl) *ast.ControlDecl {
	r.control = cd
	out := &ast.ControlDecl{
		Name:      cd.Name,
		Params:    cd.Params,
		Registers: cd.Registers,
		Locals:    cd.Locals,
		Consts:    cd.Consts,
		TokPos:    cd.TokPos,
	}
	out.Apply = r.blockStmt(cd.Apply)

	// Tables: drop removed/inlined ones, specialize the survivors.
	for _, t := range cd.Tables {
		impl := r.impls[cd.Name+"."+t.Name]
		if impl != nil && (impl.removed || impl.inlineParams != nil) {
			continue
		}
		out.Tables = append(out.Tables, r.table(cd, t, impl))
	}

	// Actions: keep those still referenced by a table or a direct call.
	used := make(map[string]bool)
	for _, t := range out.Tables {
		for _, ar := range t.Actions {
			used[ar.Name] = true
		}
		if t.Default != nil {
			used[t.Default.Name] = true
		}
	}
	ast.WalkStmts(out.Apply, func(st ast.Stmt) {
		if call, ok := st.(*ast.CallStmt); ok {
			if id, ok := call.Call.Fun.(*ast.Ident); ok {
				used[id.Name] = true
			}
		}
	})
	for _, a := range cd.Actions {
		if used[a.Name] {
			out.Actions = append(out.Actions, a)
		}
	}
	return out
}

func (r *rewriter) table(cd *ast.ControlDecl, t *ast.Table, impl *tableImpl) *ast.Table {
	out := &ast.Table{
		Name:    t.Name,
		Default: t.Default,
		Size:    t.Size,
		TokPos:  t.TokPos,
	}
	defaultName := "NoAction"
	if t.Default != nil {
		defaultName = t.Default.Name
	}
	ti := r.s.An.Tables[cd.Name+"."+t.Name]
	for i, ar := range t.Actions {
		if impl != nil && ti != nil && i < len(impl.deadActions) && impl.deadActions[i] && ar.Name != defaultName {
			continue // dead-action removal (Fig. 3 C/D)
		}
		out.Actions = append(out.Actions, ar)
	}
	for i, k := range t.Keys {
		nk := k
		if impl != nil && i < len(impl.matchKinds) {
			nk.Match = impl.matchKinds[i] // match-kind narrowing
		}
		out.Keys = append(out.Keys, nk)
	}
	return out
}

// ---------------------------------------------------------------------------
// Statements

func (r *rewriter) blockStmt(b *ast.BlockStmt) *ast.BlockStmt {
	out := &ast.BlockStmt{TokPos: b.TokPos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, r.stmt(s)...)
	}
	return out
}

// stmt rewrites one statement into zero or more statements.
func (r *rewriter) stmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		nb := r.blockStmt(s)
		if len(nb.Stmts) == 0 {
			return nil
		}
		return []ast.Stmt{nb}
	case *ast.IfStmt:
		return r.ifStmt(s)
	case *ast.AssignStmt:
		if val, ok := r.constAssigns[s]; ok && r.s.quality <= QualityNoNarrowing {
			return []ast.Stmt{&ast.AssignStmt{
				LHS:    s.LHS,
				RHS:    &ast.IntLit{Width: int(val.W), Hi: val.Hi, Lo: val.Lo, TokPos: s.TokPos},
				TokPos: s.TokPos,
			}}
		}
		return []ast.Stmt{s}
	case *ast.CallStmt:
		if m, ok := s.Call.Fun.(*ast.Member); ok && m.Name == "apply" {
			return r.applyStmt(s)
		}
		return []ast.Stmt{s}
	default:
		return []ast.Stmt{s}
	}
}

func (r *rewriter) ifStmt(s *ast.IfStmt) []ast.Stmt {
	thenDead := r.branchDead(s, true)
	elseDead := r.branchDead(s, false)

	// `if (t.apply().hit)` carries the apply's side effects in the
	// condition; splice them out before branch pruning.
	var applyStmts []ast.Stmt
	plainCond := true
	if m, ok := s.Cond.(*ast.Member); ok && m.Name == "hit" {
		if call, ok := m.X.(*ast.CallExpr); ok {
			if inner, ok := call.Fun.(*ast.Member); ok && inner.Name == "apply" {
				plainCond = false
				qname := r.control.Name + "." + inner.X.(*ast.Ident).Name
				applyStmts = r.applyReplacement(qname, &ast.CallStmt{Call: call, TokPos: s.TokPos})
				if !thenDead && !elseDead {
					// Both branches live: the condition must stay, so
					// the table must survive (prepare() force-keeps it).
					out := &ast.IfStmt{Cond: s.Cond, TokPos: s.TokPos}
					out.Then = r.wrap(r.stmt(s.Then), s.Then)
					if s.Else != nil {
						out.Else = r.wrap(r.stmt(s.Else), s.Else)
					}
					return []ast.Stmt{out}
				}
			}
		}
	}

	switch {
	case thenDead && elseDead:
		// The whole if is unreachable.
		return applyStmts
	case elseDead:
		return append(applyStmts, r.stmt(s.Then)...)
	case thenDead:
		var rest []ast.Stmt
		if s.Else != nil {
			rest = r.stmt(s.Else)
		}
		return append(applyStmts, rest...)
	}
	if !plainCond {
		// Unreachable: handled above, but keep the compiler happy.
		return applyStmts
	}
	out := &ast.IfStmt{Cond: s.Cond, TokPos: s.TokPos}
	out.Then = r.wrap(r.stmt(s.Then), s.Then)
	if s.Else != nil {
		elseStmts := r.stmt(s.Else)
		if len(elseStmts) > 0 {
			out.Else = r.wrap(elseStmts, s.Else)
		}
	}
	if emptyStmt(out.Then) && out.Else == nil {
		return nil
	}
	return []ast.Stmt{out}
}

func emptyStmt(s ast.Stmt) bool {
	b, ok := s.(*ast.BlockStmt)
	return ok && len(b.Stmts) == 0
}

// wrap folds a rewritten statement list back into a single statement.
func (r *rewriter) wrap(stmts []ast.Stmt, orig ast.Stmt) ast.Stmt {
	if len(stmts) == 1 {
		return stmts[0]
	}
	pos := orig.Pos()
	return &ast.BlockStmt{Stmts: stmts, TokPos: pos}
}

func (r *rewriter) applyStmt(s *ast.CallStmt) []ast.Stmt {
	m := s.Call.Fun.(*ast.Member)
	id, ok := m.X.(*ast.Ident)
	if !ok {
		return []ast.Stmt{s}
	}
	return r.applyReplacement(r.control.Name+"."+id.Name, s)
}

// applyReplacement rewrites a table apply site per the table's
// implementation: dropped when removed, inlined to the constant
// action's body when possible, kept otherwise.
func (r *rewriter) applyReplacement(qname string, orig *ast.CallStmt) []ast.Stmt {
	impl := r.impls[qname]
	ti := r.s.An.Tables[qname]
	if impl == nil || ti == nil {
		return []ast.Stmt{orig}
	}
	if impl.removed {
		return nil
	}
	if impl.inlineParams == nil {
		return []ast.Stmt{orig}
	}
	act := ti.Actions[impl.constAction]
	if act.Decl == nil || len(act.Decl.Body.Stmts) == 0 {
		return nil // inlining a no-op
	}
	// Rewrite the body (pruning its own dead branches), then substitute
	// the constant parameters.
	var rewritten []ast.Stmt
	for _, st := range act.Decl.Body.Stmts {
		rewritten = append(rewritten, r.stmt(st)...)
	}
	params := make(map[string]ast.Expr, len(act.Decl.Params))
	for i, p := range act.Decl.Params {
		v := impl.inlineParams[i]
		params[p.Name] = &ast.IntLit{Width: int(v.W), Hi: v.Hi, Lo: v.Lo, TokPos: orig.TokPos}
	}
	return substStmts(rewritten, params)
}

// ---------------------------------------------------------------------------
// Identifier substitution (for action inlining)

func substStmts(stmts []ast.Stmt, env map[string]ast.Expr) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		// A local declaration shadowing a parameter stops substitution
		// for the remaining statements.
		if vd, ok := s.(*ast.VarDecl); ok {
			if _, shadows := env[vd.Name]; shadows {
				env = copyEnvWithout(env, vd.Name)
			}
		}
		out = append(out, substStmt(s, env))
	}
	return out
}

func copyEnvWithout(env map[string]ast.Expr, name string) map[string]ast.Expr {
	n := make(map[string]ast.Expr, len(env))
	for k, v := range env {
		if k != name {
			n[k] = v
		}
	}
	return n
}

func substStmt(s ast.Stmt, env map[string]ast.Expr) ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return &ast.BlockStmt{Stmts: substStmts(s.Stmts, env), TokPos: s.TokPos}
	case *ast.VarDecl:
		n := *s
		if s.Init != nil {
			n.Init = substExpr(s.Init, env)
		}
		return &n
	case *ast.AssignStmt:
		return &ast.AssignStmt{
			LHS:    substExpr(s.LHS, env),
			RHS:    substExpr(s.RHS, env),
			TokPos: s.TokPos,
		}
	case *ast.IfStmt:
		n := &ast.IfStmt{Cond: substExpr(s.Cond, env), TokPos: s.TokPos}
		n.Then = substStmt(s.Then, env)
		if s.Else != nil {
			n.Else = substStmt(s.Else, env)
		}
		return n
	case *ast.CallStmt:
		return &ast.CallStmt{Call: substExpr(s.Call, env).(*ast.CallExpr), TokPos: s.TokPos}
	default:
		return s
	}
}

func substExpr(e ast.Expr, env map[string]ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.Ident:
		if repl, ok := env[e.Name]; ok {
			return repl
		}
		return e
	case *ast.Member:
		return &ast.Member{X: substExpr(e.X, env), Name: e.Name, TokPos: e.TokPos}
	case *ast.CallExpr:
		n := &ast.CallExpr{Fun: substExpr(e.Fun, env), TokPos: e.TokPos}
		for _, a := range e.Args {
			n.Args = append(n.Args, substExpr(a, env))
		}
		return n
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: e.Op, X: substExpr(e.X, env), TokPos: e.TokPos}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{Op: e.Op, X: substExpr(e.X, env), Y: substExpr(e.Y, env), TokPos: e.TokPos}
	case *ast.TernaryExpr:
		return &ast.TernaryExpr{
			Cond: substExpr(e.Cond, env), Then: substExpr(e.Then, env),
			Else: substExpr(e.Else, env), TokPos: e.TokPos,
		}
	case *ast.SliceExpr:
		return &ast.SliceExpr{X: substExpr(e.X, env), Hi: e.Hi, Lo: e.Lo, TokPos: e.TokPos}
	default:
		return e
	}
}
