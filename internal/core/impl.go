package core

import (
	"fmt"
	"strings"

	"repro/internal/dataplane"
	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// tableImpl describes how a table is currently implemented in the
// specialized program — the assumptions that must stay valid for
// installed hardware to keep working without recompilation.
type tableImpl struct {
	// removed: the table's apply site is unreachable or its behaviour
	// is the default no-op, so it was elided entirely (Fig. 3 impl. A).
	removed bool
	// constAction is the single action the table can ever select, or -1.
	constAction int
	// inlineParams holds the constant parameters of constAction when
	// the table was inlined to a plain statement sequence; nil when the
	// parameters vary (or constAction is -1).
	inlineParams []sym.BV
	// deadActions marks action indices proven unreachable and removed
	// from the implementation (Fig. 3 impl. C/D: drop removed).
	deadActions []bool
	// matchKinds are the implemented match kinds per key (possibly
	// narrowed from the declaration: ternary→exact saves TCAM, Fig. 3
	// impl. B→C).
	matchKinds []ast.MatchKind
}

func (ti *tableImpl) equal(o *tableImpl) bool {
	if ti.removed != o.removed || ti.constAction != o.constAction {
		return false
	}
	if (ti.inlineParams == nil) != (o.inlineParams == nil) || len(ti.inlineParams) != len(o.inlineParams) {
		return false
	}
	for i := range ti.inlineParams {
		if ti.inlineParams[i] != o.inlineParams[i] {
			return false
		}
	}
	if len(ti.deadActions) != len(o.deadActions) {
		return false
	}
	for i := range ti.deadActions {
		if ti.deadActions[i] != o.deadActions[i] {
			return false
		}
	}
	if len(ti.matchKinds) != len(o.matchKinds) {
		return false
	}
	for i := range ti.matchKinds {
		if ti.matchKinds[i] != o.matchKinds[i] {
			return false
		}
	}
	return true
}

func (ti *tableImpl) diff(o *tableImpl) string {
	var parts []string
	if ti.removed != o.removed {
		parts = append(parts, fmt.Sprintf("removed %v→%v", ti.removed, o.removed))
	}
	if ti.constAction != o.constAction {
		parts = append(parts, fmt.Sprintf("const-action %d→%d", ti.constAction, o.constAction))
	}
	for i := range ti.matchKinds {
		if i < len(o.matchKinds) && ti.matchKinds[i] != o.matchKinds[i] {
			parts = append(parts, fmt.Sprintf("key %d match %s→%s", i, ti.matchKinds[i], o.matchKinds[i]))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "action liveness or inlined parameters changed")
	}
	return strings.Join(parts, ", ")
}

// pointsFor returns the point IDs of a table by kind, in a small index.
type tablePoints struct {
	reach       *dataplane.Point
	action      *dataplane.Point
	actionReach []*dataplane.Point // indexed by ActionIndex
}

func (s *Specializer) tablePoints(table string) tablePoints {
	var tp tablePoints
	ti := s.An.Tables[table]
	tp.actionReach = make([]*dataplane.Point, len(ti.Actions))
	for _, p := range s.An.Points {
		if p.Table != table {
			continue
		}
		switch p.Kind {
		case dataplane.PointTableReach:
			tp.reach = p
		case dataplane.PointTableAction:
			tp.action = p
		case dataplane.PointActionReach:
			tp.actionReach[p.ActionIndex] = p
		}
	}
	return tp
}

// idealImpl computes the best implementation the current verdicts and
// configuration allow for a table.
func (s *Specializer) idealImpl(table string) *tableImpl {
	an := s.An
	ti := an.Tables[table]
	tp := s.tablePoints(table)
	impl := &tableImpl{constAction: -1}

	if tp.reach != nil && s.verdicts[tp.reach.ID].Kind == VerdictDead {
		impl.removed = true
		return impl
	}
	impl.deadActions = make([]bool, len(ti.Actions))
	for i, p := range tp.actionReach {
		if p != nil && s.verdicts[p.ID].Kind == VerdictDead {
			impl.deadActions[i] = true
		}
	}
	if tp.action != nil && s.quality <= QualityNoNarrowing {
		if v := s.verdicts[tp.action.ID]; v.Kind == VerdictConst {
			impl.constAction = int(v.Val.Uint64())
			// Inline only when every parameter of the selected action
			// resolves to a constant under the current assignment.
			act := &ti.Actions[impl.constAction]
			params := make([]sym.BV, len(act.Params))
			ok := true
			for i, pv := range act.Params {
				sub := an.Builder.Subst(pv, s.env)
				res := s.shard(0).solver.ConstValue(sub)
				if !res.Known || !res.IsConst {
					ok = false
					break
				}
				params[i] = res.Val
			}
			if ok {
				impl.inlineParams = params
			}
			if impl.constAction == ti.DefaultIndex && s.Cfg.NumEntries(table) == 0 && actionIsNop(act) {
				// Empty table whose default does nothing: remove it
				// entirely (Fig. 3 impl. A).
				impl.removed = true
				return impl
			}
		}
	}
	if s.quality == QualityFull {
		impl.matchKinds = s.idealMatchKinds(table)
	} else {
		impl.matchKinds = append([]ast.MatchKind(nil), ti.KeyMatch...)
	}
	return impl
}

func actionIsNop(ai *dataplane.ActionInfo) bool {
	return ai.Decl == nil || len(ai.Decl.Body.Stmts) == 0
}

// idealMatchKinds narrows declared match kinds to what the active
// entries actually need: a ternary (or lpm) key whose live entries all
// use the full mask is implementable as an exact match, freeing TCAM
// (paper §3, Fig. 3 impl. B→C).
func (s *Specializer) idealMatchKinds(table string) []ast.MatchKind {
	ti := s.An.Tables[table]
	kinds := append([]ast.MatchKind(nil), ti.KeyMatch...)
	if s.Cfg.Overapproximated(table) {
		return kinds // overapproximated (or degraded): keep the declaration
	}
	active, _ := s.Cfg.ActiveEntries(table)
	if len(active) == 0 {
		return kinds
	}
	for i, kind := range kinds {
		if kind != ast.MatchTernary && kind != ast.MatchLPM {
			continue
		}
		w := ti.KeyWidths[i]
		allExact := true
		for _, e := range active {
			m := e.Matches[i]
			switch m.Kind {
			case ast.MatchTernary:
				if !m.Mask.IsAllOnes() {
					allExact = false
				}
			case ast.MatchLPM:
				if m.PrefixLen != int(w) {
					allExact = false
				}
			}
			if !allExact {
				break
			}
		}
		if allExact {
			kinds[i] = ast.MatchExact
		}
	}
	return kinds
}
