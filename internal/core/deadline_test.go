// Tests for the adaptive precision controller: deadline-driven
// degradation, the degrade → differential-check → promote soundness
// loop across the catalog × seeds × workers matrix, the background
// repair goroutine, the typed sentinel errors, and the snapshot round
// trip of the degraded set.
package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/progs"
)

// preciseOpts disables both the static overapproximation threshold and
// the background repair loop, so every precision transition in a test
// is explicit.
func preciseOpts() core.Options {
	return core.Options{OverapproxThreshold: -1, RepairInterval: -1}
}

// TestDeadlineDegradesMidFlight grows the middleblock ACL precisely
// until per-update cost is well above a small budget, then applies one
// update under that budget: the controller must degrade the table
// before the expensive precise pass, mark the decision, and record the
// transition in stats, metrics and the audit trail.
func TestDeadlineDegradesMidFlight(t *testing.T) {
	const aclTable = "Ingress.acl_pre_ingress"
	p := progs.Middleblock()
	reg := obs.NewRegistry()
	trail := obs.NewTrail(0)
	opts := preciseOpts()
	opts.Metrics, opts.Audit = reg, trail
	s, err := p.LoadWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Train the EWMA: 60 precise inserts put per-update cost in the
	// ~10ms range (Table 3's linear growth), far over a 2ms budget.
	for i := 0; i < 60; i++ {
		if d := s.Apply(progs.MiddleblockACLEntry(i)); d.Kind == core.Rejected {
			t.Fatalf("entry %d rejected: %v", i, d.Err)
		}
	}
	if st := s.Statistics(); st.Degradations != 0 {
		t.Fatalf("degradations = %d before any deadline", st.Degradations)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	d := s.ApplyCtx(ctx, progs.MiddleblockACLEntry(60))
	if d.Kind == core.Rejected {
		t.Fatalf("deadline update rejected: %v", d.Err)
	}
	if !d.Degraded {
		t.Fatalf("decision not marked degraded: %+v", d)
	}
	st := s.Statistics()
	if st.Degradations != 1 || st.DegradedTables != 1 {
		t.Fatalf("stats after deadline: degradations=%d degraded_tables=%d, want 1/1", st.Degradations, st.DegradedTables)
	}
	if got := s.DegradedTables(); len(got) != 1 || got[0] != aclTable {
		t.Fatalf("DegradedTables() = %v, want [%s]", got, aclTable)
	}
	if got := reg.Counter("core.degradations").Value(); got != 1 {
		t.Fatalf("core.degradations counter = %d, want 1", got)
	}
	if n := trail.CountByDecision()["degrade"]; n != 1 {
		t.Fatalf("audit degrade records = %d, want 1", n)
	}

	// Later updates to the degraded table stay on the flat path and
	// carry the marker, without further degradation events.
	d2 := s.Apply(progs.MiddleblockACLEntry(61))
	if d2.Kind == core.Rejected || !d2.Degraded {
		t.Fatalf("follow-up decision = %+v, want accepted and degraded", d2)
	}
	if st := s.Statistics(); st.Degradations != 1 {
		t.Fatalf("degradations = %d after follow-up, want still 1", st.Degradations)
	}

	// The differential check re-runs every degraded verdict precisely;
	// promotion restores precision. Both must find zero unsound flips.
	checked, unsound, err := s.DifferentialCheck()
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 || unsound != 0 {
		t.Fatalf("differential check: checked=%d unsound=%d, want >0/0", checked, unsound)
	}
	if unsound, err := s.PromoteAll(); err != nil || unsound != 0 {
		t.Fatalf("PromoteAll: unsound=%d err=%v", unsound, err)
	}
	if got := s.DegradedTables(); len(got) != 0 {
		t.Fatalf("tables still degraded after PromoteAll: %v", got)
	}
	if n := trail.CountByDecision()["promote"]; n != 1 {
		t.Fatalf("audit promote records = %d, want 1", n)
	}
}

// TestDegradePromoteMatrix is the soundness matrix from the acceptance
// bar: for every catalog program × fuzzer seed × worker count, degrade
// every table mid-stream, finish the stream degraded, verify zero
// unsound verdicts via the differential check, promote everything, and
// require the end state to be indistinguishable from a control engine
// that never degraded.
func TestDegradePromoteMatrix(t *testing.T) {
	const half = 16
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 2; seed++ {
				for _, workers := range []int{1, parallelWorkers} {
					opts := preciseOpts()
					opts.Workers = workers
					s, err := p.LoadWith(opts)
					if err != nil {
						t.Fatal(err)
					}
					copts := preciseOpts()
					copts.Workers = workers
					control, err := p.LoadWith(copts)
					if err != nil {
						t.Fatal(err)
					}
					stream := makeStream(t, s, seed)[:2*half]
					for _, u := range stream[:half] {
						s.Apply(u)
						control.Apply(u)
					}
					for _, table := range s.An.TableOrder {
						if err := s.Degrade(table); err != nil {
							t.Fatalf("Degrade(%s): %v", table, err)
						}
					}
					for i, u := range stream[half:] {
						ds := s.Apply(u)
						dc := control.Apply(u)
						if (ds.Kind == core.Rejected) != (dc.Kind == core.Rejected) {
							t.Fatalf("seed %d workers %d update %d: rejection mismatch degraded=%s control=%s",
								seed, workers, half+i, ds.Kind, dc.Kind)
						}
					}
					checked, unsound, err := s.DifferentialCheck()
					if err != nil {
						t.Fatal(err)
					}
					if unsound != 0 {
						t.Fatalf("seed %d workers %d: %d unsound degraded verdicts (checked %d)",
							seed, workers, unsound, checked)
					}
					if unsound, err := s.PromoteAll(); err != nil || unsound != 0 {
						t.Fatalf("seed %d workers %d: PromoteAll unsound=%d err=%v", seed, workers, unsound, err)
					}
					sameEndState(t, control, s)
					if st := s.Statistics(); st.UnsoundDegraded != 0 {
						t.Fatalf("UnsoundDegraded = %d", st.UnsoundDegraded)
					}
				}
			}
		})
	}
}

// TestRepairLoopPromotesDuringQuiescence degrades a table on an engine
// with a fast repair cadence and verifies the background goroutine
// promotes it back (with zero unsound verdicts) once the engine goes
// quiet — no explicit PromoteAll.
func TestRepairLoopPromotesDuringQuiescence(t *testing.T) {
	p := progs.Fig3()
	s, err := p.LoadWith(core.Options{RepairInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, u := range progs.Fig3Updates() {
		if d := s.Apply(u); d.Kind == core.Rejected {
			t.Fatalf("update %d rejected: %v", i, d.Err)
		}
	}
	if err := s.Degrade("Ingress.eth_table"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Statistics()
		if st.DegradedTables == 0 {
			if st.Promotions < 1 {
				t.Fatalf("repair cleared the degraded set without a promotion: %+v", st)
			}
			if st.UnsoundDegraded != 0 {
				t.Fatalf("repair loop found %d unsound verdicts", st.UnsoundDegraded)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never promoted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSentinelErrors pins the typed error contract on the engine
// surface: exhausted budgets, cancellation, closed engines and unknown
// tables each map to their flayerr sentinel via errors.Is.
func TestSentinelErrors(t *testing.T) {
	p := progs.Fig3()
	s, err := p.LoadWith(preciseOpts())
	if err != nil {
		t.Fatal(err)
	}
	u := progs.Fig3Updates()[0]

	expired, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	d := s.ApplyCtx(expired, u)
	if d.Kind != core.Rejected || !errors.Is(d.Err, flayerr.ErrDeadlineExceeded) {
		t.Fatalf("expired-budget decision = %s err=%v, want rejected ErrDeadlineExceeded", d.Kind, d.Err)
	}
	if ds := s.ApplyBatchCtx(expired, progs.Fig3Updates()); len(ds) == 0 || ds[0].Kind != core.Rejected ||
		!errors.Is(ds[0].Err, flayerr.ErrDeadlineExceeded) {
		t.Fatalf("expired-budget batch decisions = %v, want all rejected ErrDeadlineExceeded", ds)
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	d = s.ApplyCtx(canceled, u)
	if d.Kind != core.Rejected || !errors.Is(d.Err, context.Canceled) {
		t.Fatalf("canceled decision = %s err=%v, want rejected context.Canceled", d.Kind, d.Err)
	}
	if errors.Is(d.Err, flayerr.ErrDeadlineExceeded) {
		t.Fatalf("plain cancellation misclassified as deadline: %v", d.Err)
	}

	if err := s.Degrade("no.such_table"); !errors.Is(err, flayerr.ErrUnknownTable) {
		t.Fatalf("Degrade(unknown) = %v, want ErrUnknownTable", err)
	}

	s.Close()
	s.Close() // idempotent
	d = s.Apply(u)
	if d.Kind != core.Rejected || !errors.Is(d.Err, flayerr.ErrClosed) {
		t.Fatalf("post-Close decision = %s err=%v, want rejected ErrClosed", d.Kind, d.Err)
	}
}

// TestSnapshotDegradedRoundTrip: the degraded set (and its stats) must
// survive Snapshot/Restore, the restored engine must still answer
// overapproximated for the pinned table, and promotion afterwards must
// be sound. Corrupt snapshots must reject with the typed sentinel.
func TestSnapshotDegradedRoundTrip(t *testing.T) {
	p := progs.Fig3()
	s, err := p.LoadWith(preciseOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range progs.Fig3Updates() {
		s.Apply(u)
	}
	if err := s.Degrade("Ingress.eth_table"); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := core.Restore(snap, preciseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DegradedTables(); len(got) != 1 || got[0] != "Ingress.eth_table" {
		t.Fatalf("restored DegradedTables() = %v, want [Ingress.eth_table]", got)
	}
	if !restored.Cfg.Overapproximated("Ingress.eth_table") {
		t.Fatal("restored table not pinned to overapproximation")
	}
	rst, sst := restored.Statistics(), s.Statistics()
	if rst.Degradations != sst.Degradations || rst.DegradedTables != sst.DegradedTables {
		t.Fatalf("restored precision stats %+v, want %+v", rst, sst)
	}
	if unsound, err := restored.PromoteAll(); err != nil || unsound != 0 {
		t.Fatalf("restored PromoteAll: unsound=%d err=%v", unsound, err)
	}
	if unsound, err := s.PromoteAll(); err != nil || unsound != 0 {
		t.Fatalf("original PromoteAll: unsound=%d err=%v", unsound, err)
	}
	sameEndState(t, s, restored)

	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := core.Restore(corrupt, core.Options{}); !errors.Is(err, flayerr.ErrSnapshotCorrupt) {
		t.Fatalf("Restore(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := core.Restore(snap[:8], core.Options{}); !errors.Is(err, flayerr.ErrSnapshotCorrupt) {
		t.Fatalf("Restore(truncated) = %v, want ErrSnapshotCorrupt", err)
	}
}
