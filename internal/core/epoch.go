// Epoch-based copy-on-write read state. The engine's mutable fields
// (verdicts, stats, entry counts, the degraded set) stay guarded by the
// write lock, but they are never read directly by the query-path
// readers anymore: every mutating call ends by publishing an immutable
// epoch — a consistent snapshot of everything the read API serves —
// through one atomic pointer swap. Readers (Verdict, Statistics,
// Entries, Generation, DegradedTables, EpochSeq) load the pointer and
// walk the frozen copy: no lock, no retry loop, no blocking on a
// writer mid-batch. Wait-free, in the strict sense that a reader
// finishes in a bounded number of its own steps regardless of writer
// activity.
//
// Publication order (the memory model DESIGN.md §4.12 documents):
//
//  1. the writer mutates engine state under the write lock;
//  2. it appends this update's audit records to the trail;
//  3. it runs the arena-sweep trigger (coord.sweep);
//  4. it builds the epoch — copying the verdict slice only when a
//     verdict actually changed, otherwise re-using the previous
//     epoch's (already frozen) copy — and atomically stores it.
//
// So a reader that observes epoch N is guaranteed (a) the audit trail
// already contains every record with Seq ≤ N's update count, and (b)
// every value in the epoch comes from the single sequential state the
// engine was in when that epoch was cut. Readers never observe a state
// "between" two updates of a batch: batches publish once, at the end.
//
// Sweep safety: epochs hold only value types (Verdict carries a sym.BV
// by value, never an *Expr), so the arena garbage collector — which
// reassigns expression ids under the write lock — cannot invalidate
// anything a lock-free reader is holding.
package core

import (
	"sync/atomic"

	"repro/internal/dpexec"
)

// epoch is one immutable published read-state. Everything in it is
// frozen at publication: readers may share it, hold it across sweeps,
// and compare fields from one load knowing they form a consistent cut.
type epoch struct {
	// seq numbers epochs monotonically from 1 (the open-time epoch).
	seq uint64
	// verdicts is a frozen copy of the verdict map (shared with the
	// previous epoch when no verdict changed — copy-on-write).
	verdicts []Verdict
	// entries maps each table to its live entry count.
	entries map[string]int
	// degraded lists the currently degraded tables, sorted.
	degraded []string
	// stats is the fully resolved counter snapshot (including the
	// degraded-table count and the arena node count at publication;
	// cache counters and the unsound count are overlaid live from
	// their atomics by Statistics).
	stats Stats
	// generation is Forwarded+Recompilations — the snapshot-dirtiness
	// cursor served by Generation().
	generation uint64
	// img is the executable data-plane image of the specialized program
	// under this epoch's configuration (exec.go); nil when the engine
	// runs without Options.Exec. Hot-swapped here so packet execution is
	// wait-free under control-plane churn, and retired with the epoch.
	img *dpexec.Image
	// dd is the diagram query core's frozen read-state (dd.go): the
	// store and the per-point roots at publication, carried
	// copy-on-write like the verdict slice. Nil when the core is
	// disabled. Explain walks it wait-free.
	dd *ddEpoch
}

// coord is the cross-shard coordination layer: the state any shard's
// work may touch that must stay globally consistent — the published
// epoch pointer, the update/audit sequence allocator, the arena-sweep
// trigger, and the taint-partition shard map. Everything here is either
// atomic or only written under the engine write lock; sweep and
// snapshot therefore always observe a consistent cut (both run with the
// engine lock held — Snapshot under RLock excludes writers, sweep under
// the write lock excludes everyone else).
type coord struct {
	// cur is the published epoch; nil only during construction.
	cur atomic.Pointer[epoch]
	// epochSeq is the last published epoch number (write-lock writes).
	epochSeq uint64
	// seq allocates update/audit sequence numbers. It is written under
	// the write lock (allocation order is the audit order) but read
	// lock-free by monitors.
	seq atomic.Int64
	// arenaNext is the Builder node count at which the next arena sweep
	// runs; 0 until the first mutating call establishes the baseline.
	arenaNext int
	// shards is the taint-partition shard map (shard.go), fixed at
	// open time.
	shards *shardMap
}

// nextSeq allocates the next update/audit sequence number. Caller holds
// the write lock; the atomic exists so monitors can sample it lock-free.
func (c *coord) nextSeq() int { return int(c.seq.Add(1)) }

// publish cuts a new epoch from the engine's current state and installs
// it. Caller holds the write lock (or is inside New/Restore before the
// engine escapes). verdictsDirty tracks whether any verdict changed
// since the last publication; when clean, the previous epoch's frozen
// verdict copy is re-used instead of re-copied — the Forward fast path
// publishes in O(tables), not O(points).
func (s *Specializer) publish() {
	prev := s.co.cur.Load()
	e := &epoch{
		seq:      s.co.epochSeq + 1,
		degraded: sortedKeys(s.degraded),
	}
	if prev != nil && !s.verdictsDirty {
		e.verdicts = prev.verdicts
	} else {
		e.verdicts = append([]Verdict(nil), s.verdicts...)
		s.verdictsDirty = false
	}
	e.entries = make(map[string]int, len(s.An.Tables))
	for name := range s.An.Tables {
		e.entries[name] = s.Cfg.NumEntries(name)
	}
	st := s.stats
	st.DegradedTables = len(s.degraded)
	st.ArenaNodes = s.An.Builder.LiveNodes()
	e.stats = st
	e.generation = uint64(st.Forwarded) + uint64(st.Recompilations)
	e.img = s.buildImageLocked(prev)
	if s.ddc != nil {
		e.dd = s.ddc.publishState(prev)
	} else if prev != nil {
		// Keep the last diagram state visible across an ablation pass
		// (ReevaluateAll publishes with s.ddc temporarily nil).
		e.dd = prev.dd
	}
	s.co.epochSeq = e.seq
	s.co.cur.Store(e)
	s.met.epoch.Set(int64(e.seq))
}

// loadEpoch returns the current epoch. It never returns nil: New and
// Restore publish before the engine escapes the constructor.
func (s *Specializer) loadEpoch() *epoch { return s.co.cur.Load() }

// EpochSeq returns the sequence number of the currently published
// epoch. Monotone; every mutating call (including rejected updates and
// no-op batches) publishes a fresh epoch.
func (s *Specializer) EpochSeq() uint64 { return s.loadEpoch().seq }

// EpochView is a consistent wait-free view of one published epoch:
// every accessor answers from the same frozen cut, so a monitor can
// correlate verdicts, entry counts and counters without a lock and
// without torn reads across calls. Views stay valid indefinitely
// (epochs are immutable and sweep-safe); holding one simply keeps that
// epoch's memory alive.
type EpochView struct {
	// Seq is the epoch sequence number (monotone across publications).
	Seq uint64
	// Generation is the snapshot-dirtiness cursor at this epoch.
	Generation uint64
	// Stats is the counter snapshot at this epoch (no live atomic
	// overlays — pure sequential state).
	Stats Stats
	e     *epoch
}

// Verdict returns the verdict of a point in this epoch.
func (v EpochView) Verdict(id int) Verdict { return v.e.verdicts[id] }

// NumVerdicts returns the number of program points in this epoch.
func (v EpochView) NumVerdicts() int { return len(v.e.verdicts) }

// Entries returns a table's live entry count in this epoch.
func (v EpochView) Entries(table string) int { return v.e.entries[table] }

// Degraded lists the degraded tables in this epoch, sorted.
func (v EpochView) Degraded() []string { return append([]string(nil), v.e.degraded...) }

// Image returns this epoch's executable data-plane image, or nil when
// the engine runs without Options.Exec. Images are immutable; a view's
// image stays runnable indefinitely.
func (v EpochView) Image() *dpexec.Image { return v.e.img }

// Epoch returns a consistent view of the currently published epoch —
// one atomic load, wait-free against writers.
func (s *Specializer) Epoch() EpochView {
	e := s.loadEpoch()
	return EpochView{Seq: e.seq, Generation: e.generation, Stats: e.stats, e: e}
}
