// Taint-partition sharding. The taint map already proves which points
// an update can reach; inverting it (pointDeps, cache.go) gives each
// point's dependency targets, and targets connected through a shared
// point must change together. Union-find over that relation yields the
// engine's taint partitions: maximal groups of targets whose points
// overlap. Each partition is assigned to exactly one shard, so two
// points in different shards never share a dependency target — a
// batch's re-evaluation can fan shard groups out across workers with
// per-point state (verdicts, witnesses, substitution memos, cache ways)
// written race-free by construction, not by locking.
//
// Shards are a static property of the program's taint structure, fixed
// at open time. Everything cross-shard — sequence allocation, the
// arena-sweep trigger, epoch publication — lives in coord (epoch.go).
package core

import (
	"sort"

	"repro/internal/dataplane"
)

// maxEngineShards bounds the shard count. Partition counts above it
// are folded together; 16 shards saturate the multicore targets the
// scaling curve measures while keeping per-shard instruments readable.
const maxEngineShards = 16

// shardMap assigns every target and every program point to a shard.
type shardMap struct {
	count      int            // shards in use (≥1)
	partitions int            // taint partitions discovered
	ofTarget   map[string]int // target → shard
	ofPoint    []int          // point ID → shard
	// points counts the points owned by each shard (instrumentation
	// and bin-packing diagnostics).
	points []int
}

// buildShardMap derives the taint partitions from the analysis and the
// inverted taint map, then bin-packs partitions onto shards
// (longest-processing-time: biggest partition first, always onto the
// least-loaded shard).
func buildShardMap(an *dataplane.Analysis, pointDeps [][]string) *shardMap {
	// Union-find over targets: two targets sharing a tainted point are
	// in one partition.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, deps := range pointDeps {
		for i := 1; i < len(deps); i++ {
			union(deps[0], deps[i])
		}
		if len(deps) > 0 {
			find(deps[0])
		}
	}

	// Partition weight = points it owns (a point belongs to the
	// partition of its dependency targets; dependency-free points are
	// spread round-robin later).
	weight := make(map[string]int)
	for _, deps := range pointDeps {
		if len(deps) > 0 {
			weight[find(deps[0])]++
		}
	}
	roots := make([]string, 0, len(weight))
	for r := range weight {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if weight[roots[i]] != weight[roots[j]] {
			return weight[roots[i]] > weight[roots[j]]
		}
		return roots[i] < roots[j]
	})

	m := &shardMap{
		partitions: len(roots),
		ofTarget:   make(map[string]int),
		ofPoint:    make([]int, len(pointDeps)),
	}
	m.count = min(maxEngineShards, max(1, len(roots)))
	m.points = make([]int, m.count)

	// LPT bin-packing of partitions onto shards.
	shardOfRoot := make(map[string]int, len(roots))
	for _, r := range roots {
		least := 0
		for i := 1; i < m.count; i++ {
			if m.points[i] < m.points[least] {
				least = i
			}
		}
		shardOfRoot[r] = least
		m.points[least] += weight[r]
	}
	for t := range parent {
		m.ofTarget[t] = shardOfRoot[find(t)]
	}
	next := 0
	for id, deps := range pointDeps {
		if len(deps) > 0 {
			m.ofPoint[id] = shardOfRoot[find(deps[0])]
			continue
		}
		// Dependency-free points (never tainted after open) spread
		// round-robin; they only matter for init and ReevaluateAll.
		m.ofPoint[id] = next
		next = (next + 1) % m.count
		m.points[m.ofPoint[id]]++
	}
	return m
}

// shardOf returns the shard owning a target; targets outside every
// partition (no tainted points) fold into shard 0.
func (m *shardMap) shardOf(target string) int { return m.ofTarget[target] }

// planUnits splits the indices of pts into evaluation units for one
// re-evaluation pass: points are grouped by owning shard (preserving
// their relative — ID — order), and each shard group is chunked so a
// pass has enough units for the worker pool to balance even when one
// partition dominates the taint set. Every point lands in exactly one
// unit.
func (m *shardMap) planUnits(pts []*dataplane.Point, workers int) (units [][]int, shardOfUnit []int) {
	groups := make([][]int, m.count)
	for k, p := range pts {
		sh := m.ofPoint[p.ID]
		groups[sh] = append(groups[sh], k)
	}
	chunk := len(pts) / (workers * 4)
	if chunk < minParallelPoints {
		chunk = minParallelPoints
	}
	for sh, g := range groups {
		for len(g) > 0 {
			n := min(chunk, len(g))
			units = append(units, g[:n])
			shardOfUnit = append(shardOfUnit, sh)
			g = g[n:]
		}
	}
	return units, shardOfUnit
}
