// Data-plane packet execution. When the engine is opened with
// Options.Exec, every epoch publication also carries an executable
// image: the current specialized program compiled (dpexec) under the
// current configuration. Image maintenance rides the same
// publication pipeline as every other epoch field:
//
//   - a forwarded update rebuilds only the touched table / value set /
//     register of the previous epoch's image (Image.WithTarget) — the
//     executable analogue of the paper's "forward the update to the
//     device" fast path;
//   - a respecializing update (or any heavier mutation: batches,
//     preloads, degradations, promotions) recompiles the image from the
//     fresh specialized program;
//   - a rejected update republishes the previous image untouched.
//
// Packet execution (Exec/ExecBatch) loads the published epoch and runs
// against its image: wait-free against writers, and always against a
// consistent program+configuration cut. Stale images retire exactly
// like epochs do — when the last reader drops them.
package core

import (
	"fmt"

	"repro/internal/dpexec"
	"repro/internal/flayerr"
	"repro/internal/p4/typecheck"
)

// imgMark records that target's control-plane state changed under an
// otherwise unchanged specialized program: the next publication patches
// the previous image incrementally.
func (s *Specializer) imgMark(target string) {
	if !s.exec || s.imgFull {
		return
	}
	s.imgTargets = append(s.imgTargets, target)
}

// imgMarkFull forces the next publication to recompile the image from
// the specialized program. Any mutation that may have changed the
// program's shape (respecialization, batches, preloads, precision
// changes) routes here.
func (s *Specializer) imgMarkFull() {
	if !s.exec {
		return
	}
	s.imgFull = true
	s.imgTargets = s.imgTargets[:0]
}

// buildImageLocked produces the image for the epoch being published.
// Caller holds the write lock (or is inside a constructor). A compile
// failure keeps serving the previous image — deterministically stale
// rather than intermittently absent; the catalog programs never hit
// this path.
func (s *Specializer) buildImageLocked(prev *epoch) *dpexec.Image {
	if !s.exec {
		return nil
	}
	var pi *dpexec.Image
	if prev != nil {
		pi = prev.img
	}
	if pi != nil && !s.imgFull {
		img := pi
		ok := true
		for _, t := range s.imgTargets {
			ni, err := img.WithTarget(s.Cfg, t)
			if err != nil {
				ok = false
				break
			}
			img = ni
		}
		if ok {
			s.imgTargets = s.imgTargets[:0]
			return img
		}
	}
	s.imgFull = false
	s.imgTargets = s.imgTargets[:0]
	spec := s.specializedProgramLocked()
	info, err := typecheck.Check(spec)
	if err != nil {
		return pi
	}
	img, err := dpexec.Compile(spec, info, s.Cfg)
	if err != nil {
		return pi
	}
	return img
}

func (s *Specializer) machine() *dpexec.Machine {
	if v := s.machines.Get(); v != nil {
		return v.(*dpexec.Machine)
	}
	return dpexec.NewMachine()
}

// PinnedExec pins one published image (and one pooled machine) for a
// stream of packets. Every Run executes against exactly the image
// current at PinExec time: the epoch load, the nil-image check and the
// machine rental are paid once per pin instead of once per packet, and
// a concurrent epoch publication cannot tear the stream — every packet
// of the pin sees the same program+configuration cut. A PinnedExec is
// not safe for concurrent use (it owns one machine); pin per goroutine.
//
// The pinned image is immutable and retires like any epoch image: when
// the pin and the publication pipeline both drop it.
type PinnedExec struct {
	s   *Specializer
	img *dpexec.Image
	m   *dpexec.Machine
}

// PinExec pins the currently published executable image for batch-level
// execution. Requires Options.Exec; otherwise flayerr.ErrExecDisabled.
// Callers must Close the pin to return its machine to the pool.
func (s *Specializer) PinExec() (*PinnedExec, error) {
	img := s.loadEpoch().img
	if img == nil {
		return nil, fmt.Errorf("core: %w", flayerr.ErrExecDisabled)
	}
	return &PinnedExec{s: s, img: img, m: s.machine()}, nil
}

// Run executes one packet against the pinned image.
func (p *PinnedExec) Run(data []byte, port uint16) (dpexec.Result, error) {
	res, err := p.m.Run(p.img, data, port)
	if err != nil {
		return dpexec.Result{}, err
	}
	res.Emitted = append([]byte(nil), res.Emitted...)
	return res, nil
}

// Close returns the pin's machine to the pool. Idempotent; Run after
// Close panics (the machine is gone).
func (p *PinnedExec) Close() {
	if p.m != nil {
		p.s.machines.Put(p.m)
		p.m = nil
	}
}

// Exec runs one packet through the published executable image and
// returns its observable result. It is wait-free against writers: the
// image is loaded from the current epoch with one atomic load, and
// concurrent control-plane churn only ever swaps in fully built images.
// Requires Options.Exec; otherwise flayerr.ErrExecDisabled.
func (s *Specializer) Exec(data []byte, port uint16) (dpexec.Result, error) {
	p, err := s.PinExec()
	if err != nil {
		return dpexec.Result{}, err
	}
	defer p.Close()
	return p.Run(data, port)
}

// ExecBatch runs a batch of packets against one consistent image (the
// epoch published when the batch started — mid-batch publications do
// not tear the batch). ports may be shorter than packets; missing
// entries default to port 0. The first packet runtime error aborts the
// batch.
func (s *Specializer) ExecBatch(packets [][]byte, ports []uint16) ([]dpexec.Result, error) {
	p, err := s.PinExec()
	if err != nil {
		return nil, err
	}
	defer p.Close()
	out := make([]dpexec.Result, len(packets))
	for i, data := range packets {
		var port uint16
		if i < len(ports) {
			port = ports[i]
		}
		res, err := p.Run(data, port)
		if err != nil {
			return nil, fmt.Errorf("core: packet %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// ExecImage returns the currently published executable image (nil when
// the engine was opened without Options.Exec). The image is immutable;
// callers running their own dpexec.Machine against it — the benchmark
// harness does, to measure packet rates without result copying — see
// exactly what Exec executes.
func (s *Specializer) ExecImage() *dpexec.Image {
	return s.loadEpoch().img
}
