package core

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/obs"
)

// coreMetrics holds the engine's pre-resolved instruments under the
// "core." prefix. The zero value (all nil) is the disabled state: every
// instrument absorbs writes at zero cost when nil, so the hot paths
// carry the accounting unconditionally and branch-free.
type coreMetrics struct {
	updates    *obs.Counter // Apply/ApplyBatch updates processed
	forwarded  *obs.Counter // Forward decisions
	recompiled *obs.Counter // Recompile decisions
	rejected   *obs.Counter // Rejected decisions

	batches        *obs.Counter // ApplyBatch invocations
	batchedUpdates *obs.Counter // updates routed through ApplyBatch
	coalesced      *obs.Counter // evaluation passes the batch engine elided

	pointsEvaluated *obs.Counter // program points re-queried
	pointsChanged   *obs.Counter // verdict flips observed
	substSkips      *obs.Counter // pointer-equal substitutions (query skipped)

	cacheHits      *obs.Counter // query-cache hits (no substitution, no solver)
	cacheMisses    *obs.Counter // query-cache misses
	cacheEvictions *obs.Counter // entries invalidated by taint or way pressure

	updateNS *obs.Histogram // per-update analysis latency, ns
	evalNS   *obs.Histogram // per-pass point re-evaluation latency, ns

	points       *obs.Gauge // program points under management
	tables       *obs.Gauge // tables under management
	cacheEntries *obs.Gauge // live query-cache entries

	// Adaptive precision controller (deadline.go).
	degradations    *obs.Counter // tables degraded to overapproximation
	promotions      *obs.Counter // tables promoted back to precise
	unsoundDegraded *obs.Counter // unsound degraded verdicts (must stay 0)
	diffChecks      *obs.Counter // differential-check passes completed
	degradedTables  *obs.Gauge   // currently degraded tables

	arenaSweeps *obs.Counter // expression-arena garbage collections
	arenaSwept  *obs.Counter // expression nodes reclaimed by sweeps
	arenaNodes  *obs.Gauge   // interned expression nodes

	// Epoch/shard engine (epoch.go / shard.go).
	epoch      *obs.Gauge     // published epoch sequence number
	shardCount *obs.Gauge     // taint-partition shards in use
	shardEvals []*obs.Counter // points evaluated, per shard (core.shard_evals_<i>)

	// reg is retained so the per-shard counters can be resolved once
	// the shard map is built (after the registry-bound instruments).
	reg *obs.Registry
}

// newCoreMetrics resolves the engine instruments from a registry; a nil
// registry yields the disabled zero value.
func newCoreMetrics(r *obs.Registry) coreMetrics {
	if r == nil {
		return coreMetrics{}
	}
	return coreMetrics{
		updates:         r.Counter("core.updates"),
		forwarded:       r.Counter("core.forwarded"),
		recompiled:      r.Counter("core.recompiled"),
		rejected:        r.Counter("core.rejected"),
		batches:         r.Counter("core.batches"),
		batchedUpdates:  r.Counter("core.batched_updates"),
		coalesced:       r.Counter("core.coalesced"),
		pointsEvaluated: r.Counter("core.points_evaluated"),
		pointsChanged:   r.Counter("core.points_changed"),
		substSkips:      r.Counter("core.subst_skips"),
		cacheHits:       r.Counter("core.cache_hits"),
		cacheMisses:     r.Counter("core.cache_misses"),
		cacheEvictions:  r.Counter("core.cache_evictions"),
		updateNS:        r.Histogram("core.update_ns"),
		evalNS:          r.Histogram("core.eval_ns"),
		points:          r.Gauge("core.points"),
		tables:          r.Gauge("core.tables"),
		cacheEntries:    r.Gauge("core.cache_entries"),
		degradations:    r.Counter("core.degradations"),
		promotions:      r.Counter("core.promotions"),
		unsoundDegraded: r.Counter("core.unsound_degraded"),
		diffChecks:      r.Counter("core.diff_checks"),
		degradedTables:  r.Gauge("core.degraded_tables"),
		arenaSweeps:     r.Counter("core.arena_sweeps"),
		arenaSwept:      r.Counter("core.arena_swept"),
		arenaNodes:      r.Gauge("core.arena_nodes"),
		epoch:           r.Gauge("core.epoch"),
		shardCount:      r.Gauge("core.shards"),
		reg:             r,
	}
}

// initShards resolves the per-shard evaluation counters once the
// taint-partition shard map is built. With metrics disabled it leaves
// the slice nil; shardEval then hands out nil (absorbing) counters.
func (m *coreMetrics) initShards(n int) {
	m.shardCount.Set(int64(n))
	if m.reg == nil {
		return
	}
	m.shardEvals = make([]*obs.Counter, n)
	for i := range m.shardEvals {
		m.shardEvals[i] = m.reg.Counter(fmt.Sprintf("core.shard_evals_%d", i))
	}
}

// shardEval picks the evaluation counter of one shard (nil-safe when
// metrics are disabled).
func (m *coreMetrics) shardEval(sh int) *obs.Counter {
	if sh < len(m.shardEvals) {
		return m.shardEvals[sh]
	}
	return nil
}

// queryName names the specialization query a point kind answers, the
// audit trail's "query" column: reachability kinds ask "executable?",
// value kinds ask "constant?" (paper §4.1).
func queryName(k dataplane.PointKind) string {
	switch k {
	case dataplane.PointAssignValue, dataplane.PointTableAction:
		return "constant"
	default:
		return "executable"
	}
}

// decisionCounter picks the outcome counter for a decision kind.
func (m *coreMetrics) decisionCounter(k DecisionKind) *obs.Counter {
	switch k {
	case Forward:
		return m.forwarded
	case Recompile:
		return m.recompiled
	default:
		return m.rejected
	}
}

// auditRecord builds the trail entry for one decided update. The changes
// slice is copied: the engine reuses its scratch buffer across updates.
func auditRecord(d *Decision, seq, batch, workers int, changes []obs.PointChange) obs.AuditRecord {
	rec := obs.AuditRecord{
		Seq:        seq,
		Batch:      batch,
		Target:     d.Update.Target(),
		Update:     d.Update.String(),
		Decision:   d.Kind.String(),
		Affected:   d.AffectedPoints,
		Components: d.Components,
		ImplChange: d.ImplementationChange,
		ElapsedNS:  d.Elapsed.Nanoseconds(),
		Workers:    workers,
	}
	if d.Degraded {
		rec.Precision = "degraded"
	}
	if d.Err != nil {
		rec.Err = d.Err.Error()
	}
	if len(changes) > 0 {
		rec.Changes = append([]obs.PointChange(nil), changes...)
	}
	return rec
}
