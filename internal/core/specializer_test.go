package core

import (
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// fig3Src is the paper's Fig. 3 program (left side).
const fig3Src = `
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> type;
}
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set(bit<16> type) {
        hdr.eth.type = type;
    }
    action drop() {
        mark_to_drop(std);
    }
    action noop() { }
    table eth_table {
        key = { hdr.eth.dst: ternary; }
        actions = { set; drop; noop; }
        default_action = noop;
        size = 1024;
    }
    apply {
        eth_table.apply();
        std.egress_port = 9w1;
    }
}
`

const tbl = "Ingress.eth_table"

func newSpec(t *testing.T, src string, opts Options) *Specializer {
	t.Helper()
	s, err := NewFromSource("test", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ternaryEntry(key, mask uint64, action string, params ...sym.BV) *controlplane.TableEntry {
	return &controlplane.TableEntry{
		Matches: []controlplane.FieldMatch{{
			Kind: controlplane.MatchTernary, Value: sym.NewBV(48, key), Mask: sym.NewBV(48, mask),
		}},
		Action: action,
		Params: params,
	}
}

func insert(e *controlplane.TableEntry) *controlplane.Update {
	return &controlplane.Update{Kind: controlplane.InsertEntry, Table: tbl, Entry: e}
}

func del(e *controlplane.TableEntry) *controlplane.Update {
	return &controlplane.Update{Kind: controlplane.DeleteEntry, Table: tbl, Entry: e}
}

// recheck ensures a specialized program is still a valid program.
func recheck(t *testing.T, prog *ast.Program) {
	t.Helper()
	src := ast.Print(prog)
	p2, err := parser.Parse(prog.Name, src)
	if err != nil {
		t.Fatalf("specialized program does not re-parse: %v\n%s", err, src)
	}
	if _, err := typecheck.Check(p2); err != nil {
		t.Fatalf("specialized program does not typecheck: %v\n%s", err, src)
	}
}

// findTable returns the table decl in the (specialized) program, or nil.
func findTable(prog *ast.Program, control, name string) *ast.Table {
	cd := prog.Control(control)
	if cd == nil {
		return nil
	}
	return cd.Table(name)
}

// TestFig3Evolution replays the paper's Fig. 3 update sequence and
// checks both the Forward/Recompile decisions and the specialized
// implementations A→D.
func TestFig3Evolution(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})

	// (1) Initial configuration: empty table ⇒ implementation A: the
	// table is removed entirely.
	spec := s.SpecializedProgram()
	recheck(t, spec)
	if findTable(spec, "Ingress", "eth_table") != nil {
		t.Fatal("impl A: empty table should be removed")
	}
	if len(spec.Control("Ingress").Apply.Stmts) != 1 {
		t.Fatalf("impl A: apply should only keep the egress assignment:\n%s", ast.Print(spec))
	}

	// (2) Insert entry 1: [key 0x1, mask 0x0] → set(0x800). The 0-mask
	// entry matches everything, so the action can be inlined.
	e1 := ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800))
	d := s.Apply(insert(e1))
	if d.Kind != Recompile {
		t.Fatalf("step 2 decision = %v", d)
	}
	spec = s.SpecializedProgram()
	recheck(t, spec)
	if findTable(spec, "Ingress", "eth_table") != nil {
		t.Fatal("step 2: table should be inlined away")
	}
	src := ast.Print(spec)
	if !strings.Contains(src, "hdr.eth.type = 16w0x800;") {
		t.Fatalf("step 2: inlined assignment missing:\n%s", src)
	}

	// (3) Replace entry 1 with [key 0x2, mask full] → set(0x900):
	// effectively an exact match; the key's match kind narrows and the
	// unused drop action disappears.
	d = s.Apply(del(e1))
	if d.Kind != Recompile {
		t.Fatalf("step 3 delete decision = %v", d)
	}
	e2 := ternaryEntry(0x2, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 0x900))
	d = s.Apply(insert(e2))
	if d.Kind != Recompile {
		t.Fatalf("step 3 insert decision = %v", d)
	}
	spec = s.SpecializedProgram()
	recheck(t, spec)
	tb := findTable(spec, "Ingress", "eth_table")
	if tb == nil {
		t.Fatalf("step 3: table should exist:\n%s", ast.Print(spec))
	}
	if tb.Keys[0].Match != ast.MatchExact {
		t.Fatalf("step 3: match kind = %s, want exact", tb.Keys[0].Match)
	}
	if tb.HasAction("drop") {
		t.Fatal("step 3: unused drop action should be removed")
	}
	if !tb.HasAction("set") || !tb.HasAction("noop") {
		t.Fatal("step 3: live actions missing")
	}

	// (4) Insert entry 2: [key 0x5, mask 0x8] → set(0x700): the masked
	// entry forces the table back to a ternary implementation.
	d = s.Apply(insert(ternaryEntry(0x5, 0x8, "set", sym.NewBV(16, 0x700))))
	if d.Kind != Recompile {
		t.Fatalf("step 4 decision = %v", d)
	}
	if d.ImplementationChange == "" {
		t.Fatal("step 4 should report an implementation-assumption change")
	}
	spec = s.SpecializedProgram()
	recheck(t, spec)
	tb = findTable(spec, "Ingress", "eth_table")
	if tb.Keys[0].Match != ast.MatchTernary {
		t.Fatalf("step 4: match kind = %s, want ternary", tb.Keys[0].Match)
	}
	if tb.HasAction("drop") {
		t.Fatal("step 4: drop action should stay removed")
	}

	// (5) Insert entry 3: [key 0x6, mask 0x7] → set(0x200): no change
	// to the implementation — the update is forwarded.
	d = s.Apply(insert(ternaryEntry(0x6, 0x7, "set", sym.NewBV(16, 0x200))))
	if d.Kind != Forward {
		t.Fatalf("step 5 decision = %v (%s)", d.Kind, d)
	}

	stats := s.Statistics()
	if stats.Updates != 5 || stats.Forwarded != 1 || stats.Recompilations != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestFig2Workflow exercises the four workflow states of Fig. 2:
// update → taint → behaviour check → forward or recompile.
func TestFig2Workflow(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})
	// A first entry changes behaviour (empty → configured): recompile.
	d := s.Apply(insert(ternaryEntry(0x10, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 1))))
	if d.Kind != Recompile || d.AffectedPoints == 0 {
		t.Fatalf("first update: %v", d)
	}
	for _, c := range d.Components {
		if c == tbl {
			goto ok
		}
	}
	t.Fatalf("components %v missing %s", d.Components, tbl)
ok:
	// A second, similar entry does not change the implementation:
	// forward without recompilation.
	d = s.Apply(insert(ternaryEntry(0x11, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 2))))
	if d.Kind != Forward {
		t.Fatalf("second update should forward, got %s", d)
	}
	// An entry that enables a previously-dead action changes behaviour.
	d = s.Apply(insert(ternaryEntry(0x12, 0xFFFFFFFFFFFF, "drop")))
	if d.Kind != Recompile {
		t.Fatalf("drop-enabling update should recompile, got %s", d)
	}
	// Rejected updates don't change anything.
	d = s.Apply(insert(ternaryEntry(0x12, 0xFFFFFFFFFFFF, "drop")))
	if d.Kind != Rejected {
		t.Fatalf("duplicate insert should be rejected, got %s", d)
	}
}

// TestBurstForwarding: a batch of semantics-preserving updates must all
// forward after the first recompilation (§4.2: 1000 fuzzer entries in
// the SCION IPv4 table do not require recompilation).
func TestBurstForwarding(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})
	// The first entry flips the table from empty to configured, and the
	// second breaks the parameter's constant-ness; every further entry
	// preserves the implementation and must forward.
	for i := 0; i < 50; i++ {
		d := s.Apply(insert(ternaryEntry(uint64(0x100+i), 0xFFFFFFFFFFFF, "set", sym.NewBV(16, uint64(i)))))
		if i < 2 {
			if d.Kind != Recompile {
				t.Fatalf("update %d should recompile, got %s", i, d)
			}
			continue
		}
		if d.Kind != Forward {
			t.Fatalf("update %d should forward, got %s", i, d)
		}
	}
	if got := s.Statistics().Recompilations; got != 2 {
		t.Fatalf("recompilations = %d, want 2", got)
	}
}

const condSrc = `
header ipv4_t { bit<32> src; bit<32> dst; bit<8> ttl; }
header ipv6_t { bit<128> src; bit<128> dst; }
struct headers { ipv4_t ipv4; ipv6_t ipv6; }
struct metadata { bit<8> cls; }
control Ingress(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    action set_cls(bit<8> c) { meta.cls = c; }
    action fwd(bit<9> port) { std.egress_port = port; }
    table classify {
        key = { hdr.ipv4.dst: lpm; }
        actions = { set_cls; NoAction; }
        default_action = NoAction;
    }
    table v6_route {
        key = { hdr.ipv6.dst: ternary; }
        actions = { fwd; NoAction; }
        default_action = NoAction;
    }
    apply {
        classify.apply();
        if (meta.cls == 8w1) {
            hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        }
        if (v6_route.apply().hit) {
            std.mcast_grp = 16w1;
        }
    }
}
`

// TestDeadBranchElimination: with no classify entries, meta.cls stays 0
// and the ttl branch is dead; configuring set_cls(1) revives it.
func TestDeadBranchElimination(t *testing.T) {
	s := newSpec(t, condSrc, Options{SkipParser: true})
	spec := s.SpecializedProgram()
	recheck(t, spec)
	src := ast.Print(spec)
	if strings.Contains(src, "hdr.ipv4.ttl =") {
		t.Fatalf("ttl branch should be eliminated with empty classify:\n%s", src)
	}
	// Both tables are empty: both should be gone.
	if findTable(spec, "Ingress", "classify") != nil || findTable(spec, "Ingress", "v6_route") != nil {
		t.Fatalf("empty tables should be removed:\n%s", src)
	}

	// Enable set_cls(1): the branch becomes reachable again.
	d := s.Apply(&controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ingress.classify",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind: controlplane.MatchLPM, Value: sym.NewBV(32, 0x0a000000), PrefixLen: 8,
			}},
			Action: "set_cls", Params: []sym.BV{sym.NewBV(8, 1)},
		},
	})
	if d.Kind != Recompile {
		t.Fatalf("classify update: %s", d)
	}
	spec = s.SpecializedProgram()
	recheck(t, spec)
	src = ast.Print(spec)
	if !strings.Contains(src, "hdr.ipv4.ttl =") {
		t.Fatalf("ttl branch should be live after set_cls entry:\n%s", src)
	}
	if findTable(spec, "Ingress", "classify") == nil {
		t.Fatal("classify should exist now")
	}
	// v6_route is still empty and its hit-branch dead.
	if findTable(spec, "Ingress", "v6_route") != nil {
		t.Fatalf("v6_route should still be removed:\n%s", src)
	}
	if strings.Contains(src, "std.mcast_grp =") {
		t.Fatalf("v6 hit branch should still be dead:\n%s", src)
	}
}

// TestHitConditionKeepsTable: when both branches of an apply().hit are
// live, the table must survive specialization.
func TestHitConditionKeepsTable(t *testing.T) {
	s := newSpec(t, condSrc, Options{SkipParser: true})
	d := s.Apply(&controlplane.Update{
		Kind: controlplane.InsertEntry, Table: "Ingress.v6_route",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind: controlplane.MatchTernary, Value: sym.NewBV2(128, 0x20010db8, 0),
				Mask: sym.NewBV2(128, ^uint64(0), 0),
			}},
			Action: "fwd", Params: []sym.BV{sym.NewBV(9, 3)},
		},
	})
	if d.Kind != Recompile {
		t.Fatalf("v6 update: %s", d)
	}
	spec := s.SpecializedProgram()
	recheck(t, spec)
	if findTable(spec, "Ingress", "v6_route") == nil {
		t.Fatalf("v6_route must be kept for its hit condition:\n%s", ast.Print(spec))
	}
	if !strings.Contains(ast.Print(spec), "std.mcast_grp =") {
		t.Fatal("hit branch should be live")
	}
}

// TestValueSetSpecialization: an unconfigured PVS prunes the parser
// branch; configuring it restores the branch (§3 parser
// specializations).
func TestValueSetSpecialization(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header mpls_t { bit<20> label; bit<12> rest; }
struct headers { ethernet_t eth; mpls_t mpls; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    value_set<bit<16>>(4) mpls_types;
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.type) {
            mpls_types: parse_mpls;
            default: accept;
        }
    }
    state parse_mpls {
        pkt.extract(hdr.mpls);
        transition accept;
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        if (hdr.mpls.isValid()) {
            std.egress_port = 9w7;
        }
        if (hdr.eth.isValid()) {
            std.mcast_grp = 16w2;
        }
    }
}
`
	s := newSpec(t, src, Options{})
	spec := s.SpecializedProgram()
	recheck(t, spec)
	printed := ast.Print(spec)
	// The mpls select case must be pruned and the mpls branch dead.
	if strings.Contains(printed, "parse_mpls;") || strings.Contains(printed, "9w7") {
		t.Fatalf("unconfigured PVS should prune the mpls path:\n%s", printed)
	}

	d := s.Apply(&controlplane.Update{
		Kind: controlplane.SetValueSet, ValueSet: "P.mpls_types",
		Members: []controlplane.ValueSetMember{{Value: sym.NewBV(16, 0x8847)}},
	})
	if d.Kind != Recompile {
		t.Fatalf("PVS update: %s", d)
	}
	printed = ast.Print(s.SpecializedProgram())
	if !strings.Contains(printed, "parse_mpls") {
		t.Fatalf("configured PVS should restore the branch:\n%s", printed)
	}
}

// TestParserTailPruning: an extracted header never accessed downstream
// is reclassified as payload.
func TestParserTailPruning(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
header trailer_t { bit<32> crc; }
struct headers { ethernet_t eth; trailer_t trailer; }
struct metadata { }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        pkt.extract(hdr.trailer);
        transition accept;
    }
}
control C(inout headers hdr, inout metadata meta, inout standard_metadata_t std) {
    apply {
        std.egress_port = hdr.eth.dst[8:0];
    }
}
`
	s := newSpec(t, src, Options{})
	printed := ast.Print(s.SpecializedProgram())
	if strings.Contains(printed, "extract(hdr.trailer)") {
		t.Fatalf("unused trailer extract should be pruned:\n%s", printed)
	}
	if !strings.Contains(printed, "extract(hdr.eth)") {
		t.Fatalf("used eth extract must stay:\n%s", printed)
	}
}

// TestRegisterFillSpecialization: a uniform register fill turns reads
// into constants and resolves branches.
func TestRegisterFillSpecialization(t *testing.T) {
	src := `
struct metadata { bit<32> v; }
control C(inout metadata meta, inout standard_metadata_t std) {
    register<bit<32>>(8) mode;
    apply {
        mode.read(meta.v, 0);
        if (meta.v == 32w1) {
            std.egress_port = 9w5;
        }
    }
}
`
	s := newSpec(t, src, Options{})
	// Unfilled register: the branch may go either way — kept.
	printed := ast.Print(s.SpecializedProgram())
	if !strings.Contains(printed, "9w0x5") {
		t.Fatalf("branch should be live with unconstrained register:\n%s", printed)
	}
	d := s.Apply(&controlplane.Update{
		Kind: controlplane.FillRegister, Register: "C.mode", Fill: sym.NewBV(32, 0),
	})
	if d.Kind != Recompile {
		t.Fatalf("fill decision: %s", d)
	}
	printed = ast.Print(s.SpecializedProgram())
	if strings.Contains(printed, "9w0x5") {
		t.Fatalf("branch should be dead with zero-filled register:\n%s", printed)
	}
}

// TestOverapproximationRevertsVerdicts reproduces §4.1: past the
// threshold the table's selector reverts to the general model, so a
// previously-const table becomes varies — and further updates are fast
// forwards.
func TestOverapproximationRevertsVerdicts(t *testing.T) {
	s := newSpec(t, fig3Src, Options{OverapproxThreshold: 5})
	for i := 0; i < 5; i++ {
		s.Apply(insert(ternaryEntry(uint64(i), 0xFFFFFFFFFFFF, "set", sym.NewBV(16, uint64(i)))))
	}
	// The 6th entry crosses the threshold: verdicts revert to the
	// general model (drop becomes possible again → recompile once).
	d := s.Apply(insert(ternaryEntry(6, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 6))))
	if d.Kind != Recompile {
		t.Fatalf("threshold crossing: %s", d)
	}
	// Past the threshold, more entries change nothing.
	d = s.Apply(insert(ternaryEntry(7, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 7))))
	if d.Kind != Forward {
		t.Fatalf("post-threshold update: %s", d)
	}
	if d.Elapsed <= 0 {
		t.Fatal("decision must be timed")
	}
}

// TestConstantPropagationIntoAssignment reproduces Fig. 5's line-12
// specialization: with the table empty, the ternary RHS folds to the
// constant 0xAAAAAAAAAAAA.
func TestConstantPropagationIntoAssignment(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { ethernet_t eth; }
struct metadata { }
parser MyParser(packet_in pkt, out headers h, inout metadata meta, inout standard_metadata_t std) {
    state start { pkt.extract(h.eth); transition accept; }
}
control Ingress(inout headers h, inout metadata meta, inout standard_metadata_t std) {
    bit<9> egress_port;
    action set(bit<9> port_var) { egress_port = port_var; }
    action noop() { }
    table port_table {
        key = { h.eth.dst: exact; }
        actions = { set; noop; }
        default_action = noop;
    }
    apply {
        egress_port = 0;
        port_table.apply();
        h.eth.dst = egress_port == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
        std.egress_port = egress_port;
    }
}
`
	s := newSpec(t, src, Options{})
	printed := ast.Print(s.SpecializedProgram())
	if !strings.Contains(printed, "h.eth.dst = 48w0xaaaaaaaaaaaa;") {
		t.Fatalf("constant propagation missed:\n%s", printed)
	}
	if strings.Contains(printed, "port_table") {
		t.Fatalf("empty port_table should be removed:\n%s", printed)
	}
}
