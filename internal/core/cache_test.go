// White-box unit tests for the query cache: way management, LRU
// displacement, and the precision of taint-driven eviction — an update
// to one target must not disturb entries of points it does not taint.
package core

import (
	"testing"

	"repro/internal/sym"
)

func ck(hi, lo, dep uint64) cacheKey {
	return cacheKey{expr: sym.Canon{Hi: hi, Lo: lo}, dep: dep}
}

var (
	vDead = Verdict{Kind: VerdictDead}
	vLive = Verdict{Kind: VerdictLive}
)

func TestQueryCacheLookupStore(t *testing.T) {
	c := newQueryCache(3)
	if _, ok := c.lookup(1, ck(1, 2, 3)); ok {
		t.Fatal("empty cache reported a hit")
	}
	if c.store(1, ck(1, 2, 3), vDead, nil) {
		t.Fatal("store into an empty way displaced an entry")
	}
	e, ok := c.lookup(1, ck(1, 2, 3))
	if !ok || e.verdict != vDead {
		t.Fatalf("lookup after store: ok=%v entry=%+v", ok, e)
	}
	// Same expression, different dependency fingerprint: distinct key.
	if _, ok := c.lookup(1, ck(1, 2, 4)); ok {
		t.Fatal("different dep fingerprint must miss")
	}
	// Point isolation: point 2 never saw the key.
	if _, ok := c.lookup(2, ck(1, 2, 3)); ok {
		t.Fatal("other point must miss")
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", h, m)
	}
	// Re-store under the same key refreshes in place.
	if c.store(1, ck(1, 2, 3), vLive, nil) {
		t.Fatal("refresh displaced an entry")
	}
	if e, _ := c.lookup(1, ck(1, 2, 3)); e.verdict != vLive {
		t.Fatalf("refresh did not update the verdict: %+v", e)
	}
	if got := c.size.Load(); got != 1 {
		t.Fatalf("size=%d, want 1", got)
	}
}

func TestQueryCacheLRUDisplacement(t *testing.T) {
	c := newQueryCache(1)
	for i := uint64(0); i < cacheWays; i++ {
		c.store(0, ck(i, i, i), vLive, nil)
	}
	// Touch key 0 so key 1 becomes the least recently used.
	c.lookup(0, ck(0, 0, 0))
	if !c.store(0, ck(99, 99, 99), vDead, nil) {
		t.Fatal("store past the way bound must displace")
	}
	if _, ok := c.lookup(0, ck(1, 1, 1)); ok {
		t.Fatal("LRU entry survived displacement")
	}
	if _, ok := c.lookup(0, ck(0, 0, 0)); !ok {
		t.Fatal("recently used entry was displaced")
	}
	if got := c.size.Load(); got != cacheWays {
		t.Fatalf("size=%d, want %d (displacement is size-neutral)", got, cacheWays)
	}
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions=%d, want 1", got)
	}
}

func TestQueryCacheEvictExcept(t *testing.T) {
	c := newQueryCache(2)
	c.store(0, ck(1, 1, 10), vLive, nil)
	c.store(0, ck(1, 1, 20), vDead, nil)
	c.store(1, ck(2, 2, 10), vLive, nil)

	if n := c.evictExcept(0, 20); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	if _, ok := c.lookup(0, ck(1, 1, 10)); ok {
		t.Fatal("stale fingerprint survived eviction")
	}
	if _, ok := c.lookup(0, ck(1, 1, 20)); !ok {
		t.Fatal("current fingerprint was evicted")
	}
	// Precision: point 1 was not named and must be untouched.
	if _, ok := c.lookup(1, ck(2, 2, 10)); !ok {
		t.Fatal("eviction leaked onto an unrelated point")
	}
	if got := c.size.Load(); got != 2 {
		t.Fatalf("size=%d, want 2", got)
	}
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions=%d, want 1", got)
	}
}

// TestEvictStalePrecision drives the engine-level invalidation on the
// Fig. 3 program: after the initial pass warms the cache, an update to
// eth_table must evict only the entries of points the table taints.
// Points outside the taint set keep their entries.
func TestEvictStalePrecision(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})
	if s.cache.size.Load() == 0 {
		t.Fatal("initial pass left the cache empty")
	}
	tainted := make(map[int]bool)
	for _, p := range s.An.PointsOf(tbl) {
		tainted[p.ID] = true
	}
	before := make(map[int]int)
	for id := range s.cache.points {
		before[id] = len(s.cache.points[id])
	}
	// Force a fingerprint change and the taint-routed eviction.
	d := s.Apply(insert(ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800))))
	if d.Kind == Rejected {
		t.Fatalf("insert rejected: %v", d.Err)
	}
	for id := range s.cache.points {
		if !tainted[id] && len(s.cache.points[id]) < before[id] {
			t.Fatalf("point %d is not tainted by %s but lost cache entries (%d -> %d)",
				id, tbl, before[id], len(s.cache.points[id]))
		}
	}
}

// TestNoCacheOptionDisables pins the ablation switch: with NoCache the
// engine must never allocate or consult a cache.
func TestNoCacheOptionDisables(t *testing.T) {
	s := newSpec(t, fig3Src, Options{NoCache: true})
	if s.cache != nil {
		t.Fatal("NoCache engine allocated a cache")
	}
	if d := s.Apply(insert(ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800)))); d.Kind == Rejected {
		t.Fatalf("insert rejected: %v", d.Err)
	}
	st := s.Statistics()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEvictions != 0 {
		t.Fatalf("NoCache engine reports cache counters: %+v", st)
	}
}
