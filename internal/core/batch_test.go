package core

import (
	"runtime"
	"slices"
	"sync"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/p4/ast"
	"repro/internal/sym"
)

func specSource(s *Specializer) string { return ast.Print(s.SpecializedProgram()) }

// TestApplyBatchEmpty: nil and empty batches are no-ops that still
// count one batch each and leave every observable unchanged.
func TestApplyBatchEmpty(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})
	before := specSource(s)
	if ds := s.ApplyBatch(nil); ds != nil {
		t.Fatalf("nil batch returned %v", ds)
	}
	if ds := s.ApplyBatch([]*controlplane.Update{}); ds != nil {
		t.Fatalf("empty batch returned %v", ds)
	}
	st := s.Statistics()
	if st.Batches != 2 || st.BatchedUpdates != 0 || st.Updates != 0 {
		t.Fatalf("stats after empty batches: %+v", st)
	}
	if got := specSource(s); got != before {
		t.Fatal("empty batch changed the specialized program")
	}
}

// TestApplyBatchMidRejected: a rejected update in the middle of a batch
// contributes nothing — the batch's end state equals sequentially
// applying only the valid updates, and the rejection is reported at its
// position with the error attached.
func TestApplyBatchMidRejected(t *testing.T) {
	good1 := ternaryEntry(0x1, ^uint64(0)>>16, "set", sym.NewBV(16, 1))
	good2 := ternaryEntry(0x2, ^uint64(0)>>16, "set", sym.NewBV(16, 2))
	batch := []*controlplane.Update{
		insert(good1),
		insert(good1), // duplicate: rejected, mid-batch
		insert(good2),
	}

	s := newSpec(t, fig3Src, Options{})
	ds := s.ApplyBatch(batch)
	if ds[0].Kind == Rejected || ds[2].Kind == Rejected {
		t.Fatalf("valid updates rejected: %s / %s", ds[0], ds[2])
	}
	if ds[1].Kind != Rejected || ds[1].Err == nil {
		t.Fatalf("duplicate insert: %s", ds[1])
	}

	// Twin engine, valid updates only, applied sequentially.
	twin := newSpec(t, fig3Src, Options{})
	twin.Apply(insert(good1))
	twin.Apply(insert(good2))
	if specSource(s) != specSource(twin) {
		t.Fatalf("mid-batch rejection leaked state:\n%s\nvs\n%s", specSource(s), specSource(twin))
	}
	if s.Cfg.NumEntries(tbl) != 2 {
		t.Fatalf("entries = %d, want 2", s.Cfg.NumEntries(tbl))
	}
	st := s.Statistics()
	if st.Updates != 3 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Forwarded+st.Recompilations+st.Rejected != st.Updates {
		t.Fatalf("outcome partition broken: %+v", st)
	}
}

// TestApplyBatchWorkerCounts: the same batch under worker counts 1,
// GOMAXPROCS (0) and an explicit pool must produce identical decisions
// and identical specialized programs.
func TestApplyBatchWorkerCounts(t *testing.T) {
	makeBatch := func() []*controlplane.Update {
		var batch []*controlplane.Update
		for i := 0; i < 20; i++ {
			batch = append(batch, insert(ternaryEntry(uint64(0x1000+i), ^uint64(0)>>16, "set", sym.NewBV(16, uint64(i)))))
		}
		return batch
	}
	type result struct {
		kinds  []DecisionKind
		source string
	}
	var results []result
	for _, workers := range []int{1, 0, 4, runtime.GOMAXPROCS(0)} {
		s := newSpec(t, fig3Src, Options{Workers: workers})
		ds := s.ApplyBatch(makeBatch())
		r := result{source: specSource(s)}
		for _, d := range ds {
			r.kinds = append(r.kinds, d.Kind)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if !slices.Equal(results[i].kinds, results[0].kinds) {
			t.Fatalf("worker variant %d: decisions %v vs %v", i, results[i].kinds, results[0].kinds)
		}
		if results[i].source != results[0].source {
			t.Fatalf("worker variant %d: specialized source diverged", i)
		}
	}
}

// TestApplyBatchCoalescing: a burst targeting one table coalesces to a
// single evaluation pass; the counters record the elided work and keep
// the outcome partition.
func TestApplyBatchCoalescing(t *testing.T) {
	s := newSpec(t, fig3Src, Options{Workers: 2})
	// Two entries to get past the initial recompilations, as in
	// TestBurstForwarding.
	s.Apply(insert(ternaryEntry(0x1, ^uint64(0)>>16, "set", sym.NewBV(16, 1))))
	s.Apply(insert(ternaryEntry(0x2, ^uint64(0)>>16, "set", sym.NewBV(16, 2))))

	var batch []*controlplane.Update
	for i := 0; i < 30; i++ {
		batch = append(batch, insert(ternaryEntry(uint64(0x100+i), ^uint64(0)>>16, "set", sym.NewBV(16, uint64(i)))))
	}
	for i, d := range s.ApplyBatch(batch) {
		if d.Kind != Forward {
			t.Fatalf("batched update %d: %s, want forward", i, d)
		}
	}
	st := s.Statistics()
	if st.Batches != 1 || st.BatchedUpdates != 30 {
		t.Fatalf("batch counters: %+v", st)
	}
	if st.Coalesced != 29 {
		t.Fatalf("coalesced = %d, want 29 (30 accepted updates, 1 evaluation pass)", st.Coalesced)
	}
	if st.Forwarded+st.Recompilations+st.Rejected != st.Updates {
		t.Fatalf("outcome partition broken: %+v", st)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
}

// TestStatisticsDuringMutation hammers the read-only entry points from
// several goroutines while the engine mutates — the satellite fix for
// the Statistics torn-read race. The race detector is the assertion;
// the invariant check rides along (it can only be torn if Statistics
// reads mid-update).
func TestStatisticsDuringMutation(t *testing.T) {
	s := newSpec(t, fig3Src, Options{Workers: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Statistics()
				if st.Forwarded+st.Recompilations+st.Rejected != st.Updates {
					t.Errorf("torn stats read: %+v", st)
					return
				}
				s.Verdict(0)
				s.SpecializedProgram()
			}
		}()
	}
	for i := 0; i < 40; i++ {
		s.Apply(insert(ternaryEntry(uint64(0x2000+i), ^uint64(0)>>16, "set", sym.NewBV(16, uint64(i)))))
		if i%8 == 0 {
			s.ReevaluateAll()
		}
	}
	close(stop)
	wg.Wait()
}

// TestReevaluateAllConcurrentWithReads: ReevaluateAll (the full
// ablation pass, which clears every per-point cache) must coexist with
// concurrent readers under the race detector, and must find nothing to
// change on a consistent engine.
func TestReevaluateAllConcurrentWithReads(t *testing.T) {
	s := newSpec(t, fig3Src, Options{Workers: 4})
	s.Apply(insert(ternaryEntry(0x1, ^uint64(0)>>16, "set", sym.NewBV(16, 1))))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Statistics()
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if changed := s.ReevaluateAll(); changed != 0 {
			t.Fatalf("ReevaluateAll found %d inconsistent verdicts", changed)
		}
	}
	close(stop)
	wg.Wait()
}
