package core

import (
	"strings"
	"testing"

	"repro/internal/p4/ast"
	"repro/internal/sym"
)

// TestQualityTradeoff replays the Fig. 3 sequence at every quality
// level and checks the §6 tradeoff: lower quality ⇒ fewer
// recompilations ⇒ less specialized implementations.
func TestQualityTradeoff(t *testing.T) {
	recompilesAt := func(q Quality) (int, *ast.Program) {
		s := newSpec(t, fig3Src, Options{Quality: q})
		updates := []func() *Decision{
			func() *Decision {
				return s.Apply(insert(ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800))))
			},
			func() *Decision { return s.Apply(del(ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800)))) },
			func() *Decision {
				return s.Apply(insert(ternaryEntry(0x2, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 0x900))))
			},
			func() *Decision {
				return s.Apply(insert(ternaryEntry(0x5, 0x8, "set", sym.NewBV(16, 0x700))))
			},
			func() *Decision {
				return s.Apply(insert(ternaryEntry(0x6, 0x7, "set", sym.NewBV(16, 0x200))))
			},
		}
		n := 0
		for i, u := range updates {
			d := u()
			if d.Kind == Rejected {
				t.Fatalf("quality %v step %d rejected: %v", q, i, d.Err)
			}
			if d.Kind == Recompile {
				n++
			}
		}
		return n, s.SpecializedProgram()
	}

	full, fullProg := recompilesAt(QualityFull)
	noNarrow, noNarrowProg := recompilesAt(QualityNoNarrowing)
	dceOnly, dceProg := recompilesAt(QualityDCEOnly)
	none, noneProg := recompilesAt(QualityNone)

	if !(full >= noNarrow && noNarrow >= dceOnly && dceOnly >= none) {
		t.Fatalf("recompilations must fall with quality: full=%d no-narrowing=%d dce-only=%d none=%d",
			full, noNarrow, dceOnly, none)
	}
	if none != 0 {
		t.Fatalf("QualityNone must never recompile, got %d", none)
	}
	// Full narrows the match kind at the end of the sequence... the
	// final state is ternary for both, but no-narrowing must skip the
	// step-3 exact narrowing — visible as one fewer recompile.
	if full <= noNarrow {
		t.Fatalf("narrowing must cost at least one extra recompilation: %d vs %d", full, noNarrow)
	}

	// Specialization quality falls too: QualityNone returns the very
	// original program.
	if noneProg == nil || ast.Print(noneProg) == "" {
		t.Fatal("QualityNone program missing")
	}
	if findTable(noneProg, "Ingress", "eth_table") == nil {
		t.Fatal("QualityNone must keep the original table")
	}
	if tb := findTable(dceProg, "Ingress", "eth_table"); tb == nil || tb.Keys[0].Match != ast.MatchTernary {
		t.Fatal("DCE-only must keep the declared ternary match")
	}
	if tb := findTable(noNarrowProg, "Ingress", "eth_table"); tb == nil || tb.Keys[0].Match != ast.MatchTernary {
		t.Fatal("no-narrowing must keep ternary")
	}
	if tb := findTable(fullProg, "Ingress", "eth_table"); tb == nil || tb.Keys[0].Match != ast.MatchTernary {
		t.Fatal("full quality ends ternary after the masked entry")
	}
	// Dead-action removal applies at every level above None.
	for _, prog := range []*ast.Program{fullProg, noNarrowProg, dceProg} {
		if findTable(prog, "Ingress", "eth_table").HasAction("drop") {
			t.Fatalf("dead drop action should be removed:\n%s", ast.Print(prog))
		}
	}
}

// TestQualityDCEOnlySkipsInlining: a constant-action table is inlined
// at full quality but kept at DCE-only.
func TestQualityDCEOnlySkipsInlining(t *testing.T) {
	e := ternaryEntry(0x1, 0x0, "set", sym.NewBV(16, 0x800)) // matches everything

	sFull := newSpec(t, fig3Src, Options{Quality: QualityFull})
	sFull.Apply(insert(e))
	if findTable(sFull.SpecializedProgram(), "Ingress", "eth_table") != nil {
		t.Fatal("full quality should inline the table away")
	}
	if !strings.Contains(ast.Print(sFull.SpecializedProgram()), "hdr.eth.type = 16w0x800;") {
		t.Fatal("full quality should constant-propagate the inlined body")
	}

	sDCE := newSpec(t, fig3Src, Options{Quality: QualityDCEOnly})
	sDCE.Apply(insert(e))
	if findTable(sDCE.SpecializedProgram(), "Ingress", "eth_table") == nil {
		t.Fatal("DCE-only must keep the table")
	}
}

// TestQualityNoneFastPath: updates under QualityNone validate but never
// trigger any query work.
func TestQualityNoneFastPath(t *testing.T) {
	s := newSpec(t, fig3Src, Options{Quality: QualityNone})
	d := s.Apply(insert(ternaryEntry(0x9, 0xFF, "drop")))
	if d.Kind != Forward || d.AffectedPoints != 0 {
		t.Fatalf("decision %v", d)
	}
	// Invalid updates are still rejected.
	d = s.Apply(insert(ternaryEntry(0x9, 0xFF, "ghost")))
	if d.Kind != Rejected {
		t.Fatalf("invalid update: %v", d)
	}
	if s.Cfg.NumEntries(tbl) != 1 {
		t.Fatal("valid update must still be installed")
	}
}
