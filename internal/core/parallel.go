package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataplane"
	"repro/internal/dd"
	"repro/internal/obs"
	"repro/internal/sym"
)

// The parallel update-analysis engine. The paper's headline requirement
// is that update analysis stays on the control-plane fast path (µs–ms
// per update, Tbl. 3); when an update — or a coalesced batch — taints
// many program points, the point re-evaluations are independent of each
// other (points are hermetic by the state-merging construction, §4.1),
// so they fan out across a bounded worker pool sharded by program point.
//
// Sharing discipline:
//
//   - the hash-consing Builder is shared (interning locks internally;
//     pointer identity must stay global or the per-point substitution
//     cache would stop working);
//   - each worker owns an evalShard: a Solver (probe scratch + RNG) and
//     a substitution memo, so symbolic evaluation never shares mutable
//     scratch;
//   - every point is claimed by exactly one worker, so the per-point
//     caches (verdict, substituted-expression pointer, liveness witness)
//     are written race-free without further locking.
//
// Verdicts are deliberately schedule- and RNG-independent, which is what
// makes the parallel path observationally identical to the sequential
// one (the equivalence suite in equiv_test.go holds it to that): Dead
// needs an exhaustive refutation and Const an exhaustive (or literal)
// certificate — both deterministic — while Sat-vs-Unknown probe luck
// only moves within the Live verdict.

// evalShard is one worker's private evaluation state.
type evalShard struct {
	solver *sym.Solver
	sub    sym.SubstScratch
	dd     *dd.Ctx
}

// ddCtx returns the worker's diagram compile context against the given
// store, dropping stale memos when the store was rebuilt since the
// worker last compiled.
func (sh *evalShard) ddCtx(st *dd.Store) *dd.Ctx {
	if sh.dd == nil || sh.dd.Store() != st {
		sh.dd = dd.NewCtx(st)
	}
	return sh.dd
}

// minParallelPoints is the fan-out threshold: below it, goroutine and
// scheduling overhead outweighs the per-point work (most single-table
// updates taint a handful of points and stay on the serial path).
const minParallelPoints = 8

// effectiveWorkers resolves the configured worker count against the
// machine and the work at hand.
func (s *Specializer) effectiveWorkers(points int) int {
	w := s.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if points < minParallelPoints {
		return 1
	}
	if w > points {
		w = points
	}
	return w
}

// shard returns the i-th worker's scratch state, growing the pool on
// first use. Shards are only ever handed out under the engine's write
// lock, and workers of one evaluation receive distinct shards.
func (s *Specializer) shard(i int) *evalShard {
	for len(s.shards) <= i {
		solver := sym.NewSolver()
		// All shards share one atomic SolverMetrics (nil when disabled).
		solver.Metrics = s.symMet
		s.shards = append(s.shards, &evalShard{solver: solver})
	}
	return s.shards[i]
}

// reevalPoints re-evaluates the given points (deduplicated, in ID
// order), installs the new verdicts, and returns the IDs of the points
// whose verdict changed, in ascending order. With an effective worker
// count above one the pass is planned by the taint-partition shard map
// (shard.go): points group by owning shard, shard groups chunk into
// evaluation units, and each unit is claimed by exactly one worker via
// an atomic cursor — so points sharing a dependency target keep cache
// and witness locality while a single dominant partition still spreads
// across the pool.
func (s *Specializer) reevalPoints(pts []*dataplane.Point) []int {
	w := s.effectiveWorkers(len(pts))
	s.met.pointsEvaluated.Add(int64(len(pts)))
	if s.cache != nil {
		defer func() { s.met.cacheEntries.Set(s.cache.size.Load()) }()
	}
	capture := s.audit != nil
	s.lastChanges = s.lastChanges[:0]
	if w <= 1 {
		sh := s.shard(0)
		var changed []int
		for _, p := range pts {
			s.met.shardEval(s.co.shards.ofPoint[p.ID]).Inc()
			old, now, ch := s.evalInto(sh, p)
			if ch {
				changed = append(changed, p.ID)
				if capture {
					s.lastChanges = append(s.lastChanges, obs.PointChange{
						Point: p.ID, Query: queryName(p.Kind),
						Old: old.String(), New: now.String(),
					})
				}
			}
		}
		s.met.pointsChanged.Add(int64(len(changed)))
		if len(changed) > 0 {
			s.verdictsDirty = true
		}
		return changed
	}
	units, shardOfUnit := s.co.shards.planUnits(pts, w)
	changed := make([]bool, len(pts))
	// Per-index change slots: each k is claimed by exactly one worker
	// (units partition the indices), so the slots are written race-free.
	// Allocated only when auditing.
	var slots []obs.PointChange
	if capture {
		slots = make([]obs.PointChange, len(pts))
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		sh := s.shard(i)
		worker := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(cursor.Add(1)) - 1
				if u >= len(units) {
					return
				}
				s.met.shardEval(shardOfUnit[u]).Add(int64(len(units[u])))
				for _, k := range units[u] {
					old, now, ch := s.evalInto(sh, pts[k])
					changed[k] = ch
					if ch && capture {
						slots[k] = obs.PointChange{
							Point: pts[k].ID, Query: queryName(pts[k].Kind),
							Old: old.String(), New: now.String(), Worker: worker,
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	var out []int
	for k, c := range changed {
		if c {
			out = append(out, pts[k].ID)
			if capture {
				s.lastChanges = append(s.lastChanges, slots[k])
			}
		}
	}
	s.met.pointsChanged.Add(int64(len(out)))
	if len(out) > 0 {
		s.verdictsDirty = true
	}
	return out
}

// evalInto re-evaluates one point with the shard's scratch state and
// installs the result; it returns the previous and new verdicts and
// whether they differ.
func (s *Specializer) evalInto(sh *evalShard, p *dataplane.Point) (old, now Verdict, changed bool) {
	now = s.evalPointWith(sh, p)
	old = s.verdicts[p.ID]
	if now == old {
		return old, now, false
	}
	s.verdicts[p.ID] = now
	return old, now, true
}
