// Differential proof of the decision-diagram query core: an engine
// answering specialization queries on the diagram path must be
// observationally identical to the probe-solver engine — same
// per-update decisions, same per-point verdicts, byte-identical
// specialized source — on every catalog program, across fuzzer streams
// and every churn pattern, under every worker-pool shape the engine
// supports. The diagram path is a pure accelerator; this suite is the
// contract that keeps it one.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/progs"
)

// ddWorkerGrid is the worker matrix the ISSUE pins: serial, the default
// pool, and the two shard-spanning sizes.
var ddWorkerGrid = []int{1, 4, 8, 16}

func loadDD(t *testing.T, p *progs.Program, workers int, noDD bool) *core.Specializer {
	t.Helper()
	s, err := p.LoadWith(core.Options{Workers: workers, NoDD: noDD})
	if err != nil {
		t.Fatalf("%s: load: %v", p.Name, err)
	}
	return s
}

// TestDDMatchesSolverCatalog replays the same fuzzer stream through a
// diagram engine and a NoDD engine for every catalog program × worker
// count, asserting decision-for-decision and end-state equality.
func TestDDMatchesSolverCatalog(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range ddWorkerGrid {
				dd := loadDD(t, p, workers, false)
				solver := loadDD(t, p, workers, true)
				for i, u := range makeStream(t, dd, 0xdd+uint64(workers)) {
					sameDecision(t, i, dd.Apply(u), solver.Apply(u))
				}
				sameEndState(t, dd, solver)
				dst, sst := dd.Statistics(), solver.Statistics()
				if dst.Forwarded != sst.Forwarded || dst.Recompilations != sst.Recompilations || dst.Rejected != sst.Rejected {
					t.Fatalf("workers %d: outcome counters diverged: %+v vs %+v", workers, dst, sst)
				}
				if sst.DDQueries != 0 || sst.DDCompiles != 0 || sst.DDNodes != 0 {
					t.Fatalf("workers %d: NoDD engine reported diagram activity: %+v", workers, sst)
				}
			}
		})
	}
}

// TestDDMatchesSolverChurn replays every churn pattern against the
// production-shaped programs on both engines, batch-shaped exactly like
// the controller would push it. The steady-state invariant and the end
// state must hold identically on both.
func TestDDMatchesSolverChurn(t *testing.T) {
	for _, p := range churnPrograms(t) {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for ki, kind := range fuzz.PatternKinds() {
				workers := ddWorkerGrid[ki%len(ddWorkerGrid)]
				t.Run(kind.String(), func(t *testing.T) {
					dd := loadDD(t, p, workers, false)
					solver := loadDD(t, p, workers, true)
					for _, s := range []*core.Specializer{dd, solver} {
						if err := p.ApplyRepresentative(s); err != nil {
							t.Fatal(err)
						}
					}
					cs, err := fuzz.Churn(dd.An, fuzz.ChurnSpec{
						Kind: kind, Table: p.BurstTable, Updates: churnLen, Seed: uint64(kind)*17 + 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, batch := range cs.Batches() {
						dds := dd.ApplyBatch(batch)
						sds := solver.ApplyBatch(batch)
						for i := range batch {
							if (dds[i].Kind == core.Rejected) != (sds[i].Kind == core.Rejected) {
								t.Fatalf("rejection mismatch on %s: %s vs %s", batch[i], dds[i].Kind, sds[i].Kind)
							}
						}
					}
					sameEndState(t, dd, solver)
				})
			}
		})
	}
}

// TestDDEngineActuallyUsesDiagrams guards against the accelerator
// silently falling back everywhere: on the catalog's precise-mode
// programs the diagram path must answer a meaningful share of queries.
func TestDDEngineActuallyUsesDiagrams(t *testing.T) {
	answered := int64(0)
	for _, p := range progs.Catalog() {
		s := loadDD(t, p, 4, false)
		for _, u := range makeStream(t, s, 7) {
			s.Apply(u)
		}
		st := s.Statistics()
		answered += st.DDQueries
		if st.DDNodes == 0 && st.Points > 0 {
			t.Errorf("%s: diagram store stayed empty", p.Name)
		}
	}
	if answered == 0 {
		t.Fatal("no query was ever answered on the diagram path")
	}
}

// TestDDSnapshotPreservesVariableOrder round-trips an engine through
// Snapshot/Restore and asserts the restored engine's diagram core walks
// the same variable order — and still matches the solver engine on a
// post-restore stream.
func TestDDSnapshotPreservesVariableOrder(t *testing.T) {
	for _, name := range []string{"fig3", "scion", "nat44"} {
		t.Run(name, func(t *testing.T) {
			p, err := progs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s := loadDD(t, p, 4, false)
			stream := makeStream(t, s, 0x5eed)
			for _, u := range stream[:len(stream)/2] {
				s.Apply(u)
			}
			before := s.VariableOrder()
			data, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			r, err := core.Restore(data, core.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			after := r.VariableOrder()
			if len(before) == 0 || len(after) != len(before) {
				t.Fatalf("variable order: %d atoms before, %d after", len(before), len(after))
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("atom %d: %v before, %v after", i, before[i], after[i])
				}
			}
			solver, err := core.Restore(data, core.Options{Workers: 4, NoDD: true})
			if err != nil {
				t.Fatal(err)
			}
			for i, u := range stream[len(stream)/2:] {
				sameDecision(t, i, r.Apply(u), solver.Apply(u))
			}
			sameEndState(t, r, solver)
		})
	}
}
