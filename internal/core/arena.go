// Expression-arena garbage collection. Hash-consed nodes are immortal
// by default: every control-plane update substitutes fresh constants
// into the data-plane expressions, and under sustained churn the
// Builder's intern table — and with it the engine's heap — grows with
// update *history* instead of live *state*. The long-horizon churn soak
// is the regression gate for this. The fix is a classic generational
// trigger: once the arena doubles past the last live size, mark every
// expression the engine can still reach and sweep the rest. Sweeps run
// under the engine write lock, between evaluation passes, so nothing
// holding the lock can see an unrooted node — and the lock-free epoch
// readers (epoch.go) are sweep-safe by construction, because epochs
// carry only value types (Verdict embeds a sym.BV by value), never
// *sym.Expr pointers whose ids a sweep would reassign.
package core

import "repro/internal/sym"

const (
	// arenaSweepFactor is the growth multiple that arms the next sweep:
	// collect when the arena exceeds factor × the last live node count.
	arenaSweepFactor = 2
	// arenaSweepFloor is the node count below which sweeping is never
	// worth the mark pass.
	arenaSweepFloor = 1 << 14
)

// arenaRoots collects every expression the engine may still compare
// against an interned node: the analysis-time structures (points, taint
// and ownership maps, table/value-set/register placeholders, the merged
// final store), the current control-plane substitution environment, the
// per-point substituted expressions and cached witnesses, and the query
// cache's witness environments. Everything else interned since the last
// sweep is churn residue.
func (s *Specializer) arenaRoots() []*sym.Expr {
	an := s.An
	roots := make([]*sym.Expr, 0, 4*len(an.Points)+2*len(s.env))
	for _, p := range an.Points {
		roots = append(roots, p.Expr)
	}
	for v := range an.Taint {
		roots = append(roots, v)
	}
	for v := range an.VarOwner {
		roots = append(roots, v)
	}
	for _, e := range an.Final {
		roots = append(roots, e)
	}
	for _, ti := range an.Tables {
		roots = append(roots, ti.KeyExprs...)
		roots = append(roots, ti.ActionVar, ti.HitVar)
		for _, ai := range ti.Actions {
			roots = append(roots, ai.Params...)
		}
	}
	for _, vs := range an.ValueSets {
		roots = append(roots, vs.KeyExpr, vs.MatchVar)
	}
	for _, ri := range an.Registers {
		roots = append(roots, ri.ReadVars...)
	}
	for k, v := range s.env {
		roots = append(roots, k, v)
	}
	roots = append(roots, s.pointSub...)
	for _, w := range s.witnesses {
		for k := range w {
			roots = append(roots, k)
		}
	}
	if s.cache != nil {
		for _, ways := range s.cache.points {
			for i := range ways {
				for k := range ways[i].witness {
					roots = append(roots, k)
				}
			}
		}
	}
	return s.ddArenaRoots(roots)
}

// maybeSweepArena runs an arena collection when the intern table has
// doubled past the last live size. Called with the engine write lock
// held, at the end of every mutating call.
func (s *Specializer) maybeSweepArena() {
	b := s.An.Builder
	n := b.NumNodes()
	if s.co.arenaNext == 0 {
		// First mutating call: record the post-compile baseline.
		s.co.arenaNext = max(arenaSweepFloor, n*arenaSweepFactor)
		s.met.arenaNodes.Set(int64(n))
		return
	}
	if n < s.co.arenaNext {
		s.met.arenaNodes.Set(int64(n))
		return
	}
	swept := b.Sweep(s.arenaRoots())
	// The workers' diagram compile memos are keyed on expression
	// pointers whose arena ids the sweep just reassigned; drop them
	// (the diagrams themselves hold no expression pointers and the
	// rooted residues above keep the per-point roots valid).
	s.flushDDCtxs()
	s.ddMaybeSweep()
	live := b.NumNodes()
	s.stats.ArenaSweeps++
	s.stats.ArenaSwept += swept
	s.met.arenaSweeps.Inc()
	s.met.arenaSwept.Add(int64(swept))
	s.met.arenaNodes.Set(int64(live))
	s.co.arenaNext = max(arenaSweepFloor, live*arenaSweepFactor)
}
