package core

import (
	"sort"
	"sync/atomic"

	"repro/internal/dataplane"
	"repro/internal/sym"
)

// The taint-keyed specialization-query cache. Every point's verdict is
// a pure function of (the point's symbolic expression, the assignment
// fragments of the objects that taint it): substitution and the solver
// are deterministic, and the engine's determinism invariant
// (parallel.go) guarantees the verdict does not depend on schedule or
// probe luck. So a verdict may be memoized under the key
//
//	(canonical hash of the point expression,
//	 fold of the dependency targets' assignment fingerprints)
//
// and replayed whenever the key recurs — without substituting, without
// querying the solver. The taint map drives invalidation exactly as it
// drives re-evaluation: when an update changes target T's assignment
// fingerprint, only the entries of points tainted by T are evicted.
//
// Both key halves are canonical (sym.Canon / controlplane
// fingerprints), never builder pointers or ids, which is what lets a
// snapshot carry the warm cache across processes.

// cacheWays bounds the entries retained per point. Eviction keeps only
// entries matching the current dependency fingerprint, so in steady
// state a point holds at most one entry; the bound is a hard backstop
// on memory, not a tuning knob.
const cacheWays = 4

// cacheKey identifies one memoized query result.
type cacheKey struct {
	expr sym.Canon // canonical hash of the point's (unsubstituted) expression
	dep  uint64    // fold of the dependency targets' assignment fingerprints
}

// cacheEntry is one memoized verdict with its liveness witness hint.
type cacheEntry struct {
	key     cacheKey
	verdict Verdict
	witness sym.Env
	used    uint64 // LRU tick
}

// queryCache is the per-point memo table. The outer slice is fixed at
// construction (indexed by point ID) and each point's way slice is only
// touched by the single worker that owns the point during a pass — or
// by the engine under its write lock between passes — so way access
// needs no locking. The counters are atomics because workers bump them
// concurrently.
type queryCache struct {
	points [][]cacheEntry
	tick   atomic.Uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64
}

func newQueryCache(points int) *queryCache {
	return &queryCache{points: make([][]cacheEntry, points)}
}

// lookup finds the point's entry for key, bumping its LRU tick.
func (c *queryCache) lookup(id int, key cacheKey) (*cacheEntry, bool) {
	ways := c.points[id]
	for i := range ways {
		if ways[i].key == key {
			ways[i].used = c.tick.Add(1)
			c.hits.Add(1)
			return &ways[i], true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// store memoizes a verdict, evicting the point's least-recently-used
// entry if the way bound is hit; it reports whether it displaced one.
func (c *queryCache) store(id int, key cacheKey, v Verdict, w sym.Env) bool {
	ways := c.points[id]
	for i := range ways {
		if ways[i].key == key {
			ways[i].verdict, ways[i].witness = v, w
			ways[i].used = c.tick.Add(1)
			return false
		}
	}
	e := cacheEntry{key: key, verdict: v, witness: w, used: c.tick.Add(1)}
	if len(ways) >= cacheWays {
		lru := 0
		for i := range ways {
			if ways[i].used < ways[lru].used {
				lru = i
			}
		}
		ways[lru] = e
		c.evictions.Add(1)
		return true
	}
	c.points[id] = append(ways, e)
	c.size.Add(1)
	return false
}

// evictExcept drops every entry of the point whose dependency
// fingerprint differs from keep, returning how many were dropped. The
// engine calls it (under its write lock) for exactly the points the
// taint map routes a changed target to.
func (c *queryCache) evictExcept(id int, keep uint64) int {
	ways := c.points[id]
	out := ways[:0]
	for _, e := range ways {
		if e.key.dep == keep {
			out = append(out, e)
		}
	}
	n := len(ways) - len(out)
	if n > 0 {
		for i := len(out); i < len(ways); i++ {
			ways[i] = cacheEntry{}
		}
		c.points[id] = out
		c.evictions.Add(int64(n))
		c.size.Add(int64(-n))
	}
	return n
}

// buildPointDeps inverts the taint map through the variable-owner map:
// for every point, the sorted, deduplicated qualified names of the
// objects whose control-plane variables can influence it. This is the
// dependency set the cache key folds over — the same routing the
// engine's re-evaluation uses, so an update that cannot re-evaluate a
// point cannot change its key either.
func buildPointDeps(an *dataplane.Analysis) [][]string {
	deps := make([][]string, len(an.Points))
	for v, ids := range an.Taint {
		owner := an.VarOwner[v]
		for _, id := range ids {
			deps[id] = append(deps[id], owner)
		}
	}
	for id, ds := range deps {
		sort.Strings(ds)
		out := ds[:0]
		for i, d := range ds {
			if i == 0 || d != ds[i-1] {
				out = append(out, d)
			}
		}
		deps[id] = out
	}
	return deps
}

// depFpSeed is the fold seed for a point with no dependencies.
const depFpSeed = 0x51afd7ed558ccd25

// depFp folds the point's dependency targets' current assignment
// fingerprints into the cache key's dependency half. The fold walks the
// sorted dependency list, so it is deterministic across engines; it is
// order-sensitive (unlike the per-fragment XOR), which keeps distinct
// dependency sets from cancelling.
func (s *Specializer) depFp(id int) uint64 {
	acc := uint64(depFpSeed)
	for _, t := range s.pointDeps[id] {
		acc = sym.Mix64(acc ^ s.targetFp[t])
	}
	return acc
}

// evictStale performs the taint-driven invalidation for one changed
// target: every point the target taints drops the cache entries whose
// dependency fingerprint no longer matches. Entries keyed on the new
// fingerprint (from an earlier visit to the same configuration within
// the current pass window) survive.
func (s *Specializer) evictStale(target string) {
	// The diagram core re-uses the exact same taint routing: the points
	// this target taints drop their compiled diagram roots (the residue
	// they were compiled from is about to change), nothing else does.
	if s.ddc != nil {
		for _, p := range s.An.PointsOf(target) {
			s.ddc.invalidate(p.ID)
		}
	}
	if s.cache == nil {
		return
	}
	evicted := 0
	for _, p := range s.An.PointsOf(target) {
		evicted += s.cache.evictExcept(p.ID, s.depFp(p.ID))
	}
	if evicted > 0 {
		s.met.cacheEvictions.Add(int64(evicted))
		s.met.cacheEntries.Set(s.cache.size.Load())
	}
}
