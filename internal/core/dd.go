// The decision-diagram query core (internal/dd) integration: per-point
// conditions compile into a canonical ordered decision diagram over
// match-key predicates, so re-evaluating a point after an update is a
// near-O(1) diagram walk instead of a fresh substitute-and-probe solver
// pass. The diagram path is a pure accelerator with a hard behavioural
// contract: every verdict it installs is the verdict the probe solver
// would have installed (the differential suite in dddiff_test.go holds
// it to that on the whole catalog), and any query it cannot decide
// within budget falls back to the solver. Structure is shared three
// ways: hash-consing dedups across the points of one pass, the
// per-worker compile memo dedups across updates (an incremental update
// re-compiles only the changed region of a residue), and the fixed
// taint-frequency variable order keeps equal conditions
// pointer-equal across points.
//
// Lifecycle hooks, mirroring the existing machinery exactly:
//
//   - invalidation re-uses evictStale's taint routing — when a target's
//     assignment fingerprint changes, precisely the tainted points drop
//     their diagram roots (cache.go);
//   - epoch publication carries the diagram store and per-point roots
//     copy-on-write, so Explain is wait-free like every other epoch
//     reader (epoch.go);
//   - the residues backing live roots are arena roots, and the
//     per-worker memos (keyed on hash-consed expression pointers) are
//     discarded when the arena is swept (arena.go);
//   - snapshots persist the variable order only; diagrams are rebuilt,
//     not serialized (snapshot.go).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/dd"
	"repro/internal/sym"
)

const (
	// ddWalkBudget bounds the node visits of one feasibility walk. The
	// catalog's worst residues are entry-match ite chains whose walks
	// visit O(entries) nodes, so the budget clears multi-thousand-entry
	// precise tables; a blown budget falls back to the solver.
	ddWalkBudget = 1 << 14
	// ddSweepFactor/ddSweepFloor arm the diagram-store rebuild the same
	// way the expression arena's trigger works: rebuild when the store
	// grows past factor × the post-rebuild size. Old stores stay alive
	// as long as a published epoch references them.
	ddSweepFactor = 4
	ddSweepFloor  = 1 << 15
	// ddCompileBudget bounds one root compile at update rate. The cap
	// is deliberately far below the dd package's own limit: a residue
	// that cannot compile in ~16k steps is recompiled on every update
	// it survives (priority-chain ACL residues change wholesale when
	// an entry lands), so burning a large budget per update costs more
	// than the solver fallback it replaces. Each consecutive strike
	// halves the next attempt's budget down to ddCompileFloor.
	ddCompileBudget = 1 << 14
	ddCompileFloor  = 1 << 10
	// ddMaxSkip caps the exponential backoff window: a point whose
	// residues keep blowing the budget retries at most every
	// ddMaxSkip-th residue change rather than never, so a table that
	// shrinks back into compilable range is eventually re-adopted.
	ddMaxSkip = 256
)

// ddRoot is one point's compiled condition. sub is the hash-consed
// residue the root was compiled from (the entry's validity key: the
// engine re-uses the root only while the residue pointer matches);
// node is nil when the residue is outside the diagram fragment and the
// point runs on the solver path; vars/bits mirror the solver's
// free-variable enumeration so Dead/Const upgrades follow the same
// exhaustive-bits rule the solver applies.
type ddRoot struct {
	sub  *sym.Expr
	node *dd.Node
	vars []*sym.Expr
	bits int
	// strikes/skip are the compile-backoff state: strikes counts
	// consecutive attempts that blew (or nearly blew) their budget,
	// skip is the number of future residue changes to sit out before
	// trying again. Both survive taint invalidation — the whole point
	// is remembering across updates that this point's conditions are
	// too expensive to rebuild at update rate.
	strikes int
	skip    int
}

// ddCore is the engine-side state of the diagram query core. roots is
// indexed by point ID and written only by the point's owning worker
// during a pass (the same race-freedom argument as pointSub); the
// store pointer is atomic so wait-free readers (Statistics) can sample
// node counts while a rebuild swaps it under the write lock.
type ddCore struct {
	store    atomic.Pointer[dd.Store]
	atomVars []*sym.Expr // atom index → data-plane variable node
	roots    []ddRoot
	// rootsDirty marks that a worker recompiled or dropped a root since
	// the last publication; publish() then re-copies the root slice
	// (copy-on-write, like the verdict slice).
	rootsDirty atomic.Bool
	baseline   int // store size that arms the next rebuild

	queries   atomic.Int64 // verdicts answered on the diagram path
	fallbacks atomic.Int64 // queries punted to the probe solver
	compiles  atomic.Int64 // root compilations
}

// ddEpoch is the published read-state: the store (immutable for
// readers — nodes never mutate and the atom table is copy-on-write)
// and the per-point roots frozen at publication. Sweep-safe by the
// same argument as the rest of the epoch: nothing in it is compared
// against builder state; Explain walks diagram nodes, which reference
// atoms by index and constants by value, never *sym.Expr.
type ddEpoch struct {
	store *dd.Store
	roots []*dd.Node
}

// newDDCore builds the diagram core for a freshly analyzed program:
// it derives the variable order and registers every atom the residues
// can mention. Data-plane variables are ordered by taint frequency —
// how many program points test them — most-frequent first (ties by
// name), so the hottest match keys sit near the root and cross-point
// sharing is maximal. Variables that only appear through assignments
// (table keys, value-set keys, register read sites) follow, in
// deterministic name order. order, when non-nil, is a persisted
// variable order from a snapshot and is registered verbatim instead —
// a resumed engine must walk its diagrams in the exact order the
// snapshotting engine used, or the rebuilt witnesses would diverge.
func newDDCore(an *dataplane.Analysis, order []dd.Atom) *ddCore {
	d := &ddCore{roots: make([]ddRoot, len(an.Points))}
	st := dd.NewStore()
	d.store.Store(st)
	vars := make(map[string]*sym.Expr)
	if order != nil {
		b := an.Builder
		for _, a := range order {
			v := b.Data(a.Name, a.Width)
			d.register(st, v)
		}
		return d
	}
	counts := make(map[string]int)
	seen := make(map[*sym.Expr]bool)
	perPoint := make(map[*sym.Expr]bool)
	for _, p := range an.Points {
		clear(perPoint)
		collectDataVars(p.Expr, seen, func(v *sym.Expr) {
			if !perPoint[v] {
				perPoint[v] = true
				counts[v.Name]++
				vars[v.Name] = v
			}
		})
		clear(seen)
	}
	collect := func(e *sym.Expr) {
		collectDataVars(e, seen, func(v *sym.Expr) {
			if _, ok := counts[v.Name]; !ok {
				counts[v.Name] = 0
				vars[v.Name] = v
			}
		})
	}
	for _, name := range sortedNames(an.Tables) {
		for _, e := range an.Tables[name].KeyExprs {
			collect(e)
		}
	}
	for _, name := range sortedNames(an.ValueSets) {
		collect(an.ValueSets[name].KeyExpr)
	}
	for _, name := range sortedNames(an.Registers) {
		for _, rv := range an.Registers[name].ReadVars {
			collect(rv)
		}
	}
	for _, name := range dd.SortAtomsByCount(counts) {
		d.register(st, vars[name])
	}
	return d
}

// register adds one data variable as an atom, keeping the atom-index →
// variable-node mirror in step.
func (d *ddCore) register(st *dd.Store, v *sym.Expr) {
	id := st.Register(v.Name, v.Width)
	for int(id) >= len(d.atomVars) {
		d.atomVars = append(d.atomVars, nil)
	}
	d.atomVars[id] = v
}

// ensureAtoms registers any data variable of a freshly compiled
// assignment fragment that the open-time derivation did not see —
// register refills substitute fresh unconstrained data variables, which
// must become atoms before a residue mentioning them compiles. Called
// serially under the engine write lock (recompileTarget), so the
// append order — and with it the variable order — stays deterministic
// for a given update sequence.
func (d *ddCore) ensureAtoms(frag controlplane.Env) {
	st := d.store.Load()
	keys := make([]*sym.Expr, 0, len(frag))
	for k := range frag {
		keys = append(keys, k)
	}
	sortExprsByName(keys)
	seen := make(map[*sym.Expr]bool)
	for _, k := range keys {
		collectDataVars(frag[k], seen, func(v *sym.Expr) {
			if !st.Has(v.Name) {
				d.register(st, v)
			}
		})
	}
}

// invalidate drops one point's diagram root. Driven by evictStale's
// taint routing: exactly the points a changed target taints lose their
// roots, nothing else.
func (d *ddCore) invalidate(id int) {
	r := &d.roots[id]
	if r.sub == nil {
		return
	}
	d.roots[id] = ddRoot{strikes: r.strikes, skip: r.skip}
	d.rootsDirty.Store(true)
}

// rootFor returns the point's diagram root for the given residue,
// compiling (through the worker's memo) when the cached root does not
// match. ok=false means the residue is outside the diagram fragment.
func (s *Specializer) rootFor(sh *evalShard, id int, sub *sym.Expr) (*dd.Node, *ddRoot, bool) {
	d := s.ddc
	r := &d.roots[id]
	if r.sub == sub {
		return r.node, r, r.node != nil
	}
	// Backoff window: this point's last compiles blew their budget, so
	// it sits out skip residue changes on the solver path before the
	// next (cheaper) attempt. A memo hit below never strikes, so a
	// point cycling through a bounded residue set — the steady churn
	// shape — pays for each distinct residue once and then reads the
	// memo forever.
	if r.skip > 0 {
		r.skip--
		r.sub, r.node, r.vars, r.bits = sub, nil, nil, 0
		d.rootsDirty.Store(true)
		return nil, r, false
	}
	limit := ddCompileBudget >> r.strikes
	if limit < ddCompileFloor {
		limit = ddCompileFloor
	}
	n, used, ok := sh.ddCtx(d.store.Load()).CompileBudget(sub, limit)
	strikes, skip := r.strikes, 0
	if ok && used < limit/2 {
		strikes = 0
	} else {
		// Failed, or succeeded while consuming most of the budget —
		// either way this residue family is too expensive to rebuild
		// on every update.
		if strikes < 16 {
			strikes++
		}
		skip = min(1<<strikes, ddMaxSkip)
	}
	*r = ddRoot{sub: sub, strikes: strikes, skip: skip}
	if ok {
		r.node = n
		r.vars = sh.solver.FreeVars(sub)
		for _, v := range r.vars {
			r.bits += int(v.Width)
		}
	}
	d.compiles.Add(1)
	d.rootsDirty.Store(true)
	return r.node, r, ok
}

// queryAny dispatches a point's specialization query to the diagram
// path when the core is enabled, the solver otherwise.
func (s *Specializer) queryAny(sh *evalShard, p *dataplane.Point, sub *sym.Expr) Verdict {
	if s.ddc == nil {
		return s.queryPoint(sh, p, sub)
	}
	// A point under a degraded target stays on the solver path: its
	// residue is deliberately overapproximated — large, and replaced
	// wholesale on every update — the opposite of the stable precise
	// conditions the diagram compiles compactly. Attempting those
	// compiles would burn the full budget per point per update for
	// nothing; the differential check and promotion already re-prove
	// degraded verdicts precisely.
	if len(s.degraded) > 0 {
		for _, t := range s.pointDeps[p.ID] {
			if _, deg := s.degraded[t]; deg {
				s.ddc.fallbacks.Add(1)
				return s.queryPoint(sh, p, sub)
			}
		}
	}
	switch p.Kind {
	case dataplane.PointIfBranch, dataplane.PointActionReach,
		dataplane.PointTableReach, dataplane.PointSelectCase:
		return s.ddExec(sh, p, sub)
	case dataplane.PointAssignValue, dataplane.PointTableAction:
		return s.ddConst(sh, p, sub)
	default:
		return Verdict{Kind: VerdictLive}
	}
}

// ddExec answers an executability query on the diagram. The verdict
// contract with the solver path (CheckWitness) is exact:
//
//   - a True root, a working witness, or a feasible true-path is Live
//     (the solver answers Sat, or Unknown — both map to Live);
//   - a proof that no feasible true-path exists upgrades to Dead only
//     when the residue's free bits fit the solver's exhaustive bound,
//     because that is precisely when the solver would have proven
//     Unsat; above the bound the solver answers Unknown, so the
//     diagram answers Live;
//   - anything the walk cannot decide within budget goes to the
//     solver.
//
// Fresh witnesses are verified against the residue before
// installation, so the walk can never plant a lying hint.
func (s *Specializer) ddExec(sh *evalShard, p *dataplane.Point, sub *sym.Expr) Verdict {
	d := s.ddc
	if sub.IsTrue() {
		d.queries.Add(1)
		s.witnesses[p.ID] = sym.Env{}
		return Verdict{Kind: VerdictLive}
	}
	if sub.IsFalse() {
		d.queries.Add(1)
		return Verdict{Kind: VerdictDead}
	}
	root, r, ok := s.rootFor(sh, p.ID, sub)
	if !ok || r.bits == 0 {
		d.fallbacks.Add(1)
		return s.queryPoint(sh, p, sub)
	}
	// Witness re-proof: one path walk, O(path) instead of a residue
	// traversal. A hint that still satisfies keeps the point Live with
	// the same witness the solver path would have kept.
	if hint := s.witnesses[p.ID]; len(hint) > 0 {
		if v, done := dd.EvalNode(root, d.hintGetter(hint)); done && v.IsTrue() {
			d.queries.Add(1)
			return Verdict{Kind: VerdictLive}
		}
	}
	exact := r.bits <= sym.DefaultExhaustiveBits
	if root.IsTrue() {
		d.queries.Add(1)
		s.witnesses[p.ID] = zerosEnv(r.vars)
		return Verdict{Kind: VerdictLive}
	}
	if root.IsFalse() {
		d.queries.Add(1)
		if exact {
			return Verdict{Kind: VerdictDead}
		}
		return Verdict{Kind: VerdictLive}
	}
	asg, out := dd.Sat(root, d.store.Load().Atoms(), ddWalkBudget)
	switch out {
	case dd.SatYes:
		env := d.envOf(asg, r.vars)
		if v, done := sh.solver.Eval(sub, env); done && v.IsTrue() {
			d.queries.Add(1)
			s.witnesses[p.ID] = env
			return Verdict{Kind: VerdictLive}
		}
		// The walk and the evaluator disagree — never trust the walk
		// over the evaluator; take the solver path.
	case dd.SatNo:
		d.queries.Add(1)
		if exact {
			return Verdict{Kind: VerdictDead}
		}
		return Verdict{Kind: VerdictLive}
	}
	d.fallbacks.Add(1)
	return s.queryPoint(sh, p, sub)
}

// ddConst answers a constancy query on the diagram, with the same
// verdict contract against ConstValue: a uniform diagram upgrades to
// Const only inside the exhaustive bound (where the solver certifies),
// two verified differing evaluations are Varies (the solver's
// refutation), and everything else goes to the solver.
func (s *Specializer) ddConst(sh *evalShard, p *dataplane.Point, sub *sym.Expr) Verdict {
	d := s.ddc
	if sub.IsConst() {
		d.queries.Add(1)
		return Verdict{Kind: VerdictConst, Val: sub.Val}
	}
	root, r, ok := s.rootFor(sh, p.ID, sub)
	if !ok || r.bits == 0 {
		d.fallbacks.Add(1)
		return s.queryPoint(sh, p, sub)
	}
	exact := r.bits <= sym.DefaultExhaustiveBits
	if root.IsTerminal() {
		d.queries.Add(1)
		if exact {
			return Verdict{Kind: VerdictConst, Val: root.Value()}
		}
		return Verdict{Kind: VerdictVaries}
	}
	val, ea, eb, out := dd.ConstCheck(root, d.store.Load().Atoms(), ddWalkBudget)
	switch out {
	case dd.ConstVaries:
		envA, envB := d.envOf(ea, r.vars), d.envOf(eb, r.vars)
		va, okA := sh.solver.Eval(sub, envA)
		vb, okB := sh.solver.Eval(sub, envB)
		if okA && okB && va != vb {
			d.queries.Add(1)
			return Verdict{Kind: VerdictVaries}
		}
	case dd.ConstUniform:
		d.queries.Add(1)
		if exact {
			return Verdict{Kind: VerdictConst, Val: val}
		}
		return Verdict{Kind: VerdictVaries}
	}
	d.fallbacks.Add(1)
	return s.queryPoint(sh, p, sub)
}

// hintGetter adapts a residue witness (keyed by variable node) to the
// diagram's atom indexing.
func (d *ddCore) hintGetter(hint sym.Env) func(int32) (sym.BV, bool) {
	return func(a int32) (sym.BV, bool) {
		if int(a) >= len(d.atomVars) || d.atomVars[a] == nil {
			return sym.BV{}, false
		}
		v, ok := hint[d.atomVars[a]]
		return v, ok
	}
}

// envOf completes a walk assignment into a full residue witness:
// walk-constrained atoms take their walked values, every other free
// variable is zero (any value preserves the walked path — the path's
// predicates only test constrained atoms).
func (d *ddCore) envOf(asg map[int32]sym.BV, vars []*sym.Expr) sym.Env {
	env := make(sym.Env, len(vars))
	for _, v := range vars {
		env[v] = sym.BV{W: v.Width}
	}
	for a, val := range asg {
		if int(a) < len(d.atomVars) && d.atomVars[a] != nil {
			if _, in := env[d.atomVars[a]]; in {
				env[d.atomVars[a]] = val
			}
		}
	}
	return env
}

func zerosEnv(vars []*sym.Expr) sym.Env {
	env := make(sym.Env, len(vars))
	for _, v := range vars {
		env[v] = sym.BV{W: v.Width}
	}
	return env
}

// publishState cuts the epoch's diagram state, copy-on-write: when no
// root changed since the last publication and the store was not
// rebuilt, the previous epoch's frozen copy is re-used — the Forward
// fast path publishes without touching O(points) state.
func (d *ddCore) publishState(prev *epoch) *ddEpoch {
	st := d.store.Load()
	dirty := d.rootsDirty.Swap(false)
	if prev != nil && prev.dd != nil && prev.dd.store == st && !dirty {
		return prev.dd
	}
	roots := make([]*dd.Node, len(d.roots))
	for i := range d.roots {
		roots[i] = d.roots[i].node
	}
	return &ddEpoch{store: st, roots: roots}
}

// ddMaybeSweep rebuilds the diagram store when it has grown past the
// sweep factor — the diagram analogue of the expression arena's
// generational trigger. Live roots recompile into a fresh store
// (sharing one memo, so the rebuild costs one compile pass over live
// state, not history); old stores stay reachable from any epoch that
// still references them and are reclaimed by the runtime when the last
// such epoch is dropped. Called under the engine write lock.
func (s *Specializer) ddMaybeSweep() {
	d := s.ddc
	if d == nil {
		return
	}
	st := d.store.Load()
	n := st.NumNodes()
	if d.baseline == 0 {
		d.baseline = max(ddSweepFloor, n*ddSweepFactor)
		return
	}
	if n < d.baseline {
		return
	}
	fresh := dd.NewStore()
	for _, a := range st.Atoms() {
		fresh.Register(a.Name, a.Width)
	}
	ctx := dd.NewCtx(fresh)
	for i := range d.roots {
		r := &d.roots[i]
		if r.sub == nil || r.node == nil {
			continue
		}
		if nn, _, ok := ctx.CompileBudget(r.sub, ddCompileBudget); ok {
			r.node = nn
		} else {
			r.node = nil
		}
	}
	d.store.Store(fresh)
	d.rootsDirty.Store(true)
	s.flushDDCtxs()
	d.baseline = max(ddSweepFloor, fresh.NumNodes()*ddSweepFactor)
}

// flushDDCtxs discards every worker's compile/apply memos — after an
// arena sweep (the compile memo's expression-pointer keys are retired)
// or a store rebuild (the memo values point into the old store).
func (s *Specializer) flushDDCtxs() {
	for _, sh := range s.shards {
		sh.dd = nil
	}
}

// ddArenaRoots appends the expressions the diagram core keeps live
// across arena sweeps: every root's residue (so the pointer-keyed
// reuse check and the compile memos stay meaningful after a sweep) and
// the atom-index variable mirror (so witness translation never holds a
// stale alias).
func (s *Specializer) ddArenaRoots(roots []*sym.Expr) []*sym.Expr {
	if s.ddc == nil {
		return roots
	}
	roots = append(roots, s.ddc.atomVars...)
	for i := range s.ddc.roots {
		if sub := s.ddc.roots[i].sub; sub != nil {
			roots = append(roots, sub)
		}
	}
	return roots
}

// collectDataVars walks an expression DAG and reports every distinct
// data-plane variable node (seen is the caller's visited set, reused
// across calls for determinism of the enumeration order: first
// encounter in a deterministic DFS).
func collectDataVars(e *sym.Expr, seen map[*sym.Expr]bool, out func(v *sym.Expr)) {
	if e == nil || seen[e] {
		return
	}
	seen[e] = true
	if e.Op == sym.OpVar {
		if e.Class == sym.DataVar {
			out(e)
		}
		return
	}
	collectDataVars(e.A, seen, out)
	collectDataVars(e.B, seen, out)
	collectDataVars(e.C, seen, out)
}

func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortExprsByName(xs []*sym.Expr) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1].Name > xs[j].Name; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// ExplainStep is one predicate test along an explained diagram path.
type ExplainStep struct {
	// Pred is the predicate in the paper's notation, e.g.
	// "@hdr.ipv4.dstAddr@ == 0x0a000001".
	Pred string `json:"pred"`
	// Taken reports which branch the witness assignment took.
	Taken bool `json:"taken"`
}

// Explanation is the introspection record of one program point under
// the published epoch: what the point asks, what the engine concluded,
// and — when the point's condition lives in the diagram core — the
// exact predicate path and witness assignment behind the verdict.
type Explanation struct {
	// Point is the program-point ID.
	Point int `json:"point"`
	// Kind is the point kind (if-branch, table-action, ...).
	Kind string `json:"kind"`
	// Query names the specialization question: "executable" or
	// "constant".
	Query string `json:"query"`
	// Control is the enclosing control block; Table the associated
	// table, when any.
	Control string `json:"control,omitempty"`
	Table   string `json:"table,omitempty"`
	// Verdict is the point's verdict under the explained epoch.
	Verdict string `json:"verdict"`
	// Value is the constant's value when Verdict is "const".
	Value string `json:"value,omitempty"`
	// Source reports what produced the verdict evidence: "dd" when the
	// point's condition is compiled in the diagram core (Steps/Witness
	// are populated), "solver" when the point currently runs on the
	// probe-solver path (no path evidence is available wait-free).
	Source string `json:"source"`
	// Steps is the root-to-terminal predicate path of the witness
	// assignment through the canonical diagram.
	Steps []ExplainStep `json:"steps,omitempty"`
	// Witness maps data-plane variables to the values that drive the
	// explained path (a liveness witness for executability, one
	// realizing assignment for constancy).
	Witness map[string]string `json:"witness,omitempty"`
	// Epoch is the epoch sequence number the explanation was cut from.
	Epoch uint64 `json:"epoch"`
}

// Explain reports how the published epoch's verdict for one program
// point comes about: the specialization query, the verdict, and — for
// diagram-compiled points — the predicates tested along the witness
// path with the witness assignment itself. It is wait-free (one epoch
// load plus walks over immutable diagram nodes) and may be called
// concurrently with writers from any number of goroutines.
func (s *Specializer) Explain(id int) (*Explanation, error) {
	if id < 0 || id >= len(s.An.Points) {
		return nil, fmt.Errorf("unknown program point %d (have %d)", id, len(s.An.Points))
	}
	e := s.loadEpoch()
	p := s.An.Points[id]
	out := &Explanation{
		Point:   id,
		Kind:    p.Kind.String(),
		Query:   queryName(p.Kind),
		Control: p.Control,
		Table:   p.Table,
		Verdict: e.verdicts[id].Kind.String(),
		Source:  "solver",
		Epoch:   e.seq,
	}
	if e.verdicts[id].Kind == VerdictConst {
		out.Value = e.verdicts[id].Val.String()
	}
	if e.dd == nil || id >= len(e.dd.roots) || e.dd.roots[id] == nil {
		return out, nil
	}
	out.Source = "dd"
	root := e.dd.roots[id]
	atoms := e.dd.store.Atoms()
	// Pick the assignment whose path we narrate: a satisfying walk for
	// live points, the zero assignment otherwise (for a dead point
	// every assignment reaches the false terminal — zero is as good a
	// narrative as any).
	asg, res := dd.Sat(root, atoms, ddWalkBudget)
	if res != dd.SatYes {
		asg = nil
	}
	get := func(a int32) sym.BV {
		if v, ok := asg[a]; ok {
			return v
		}
		w := uint16(1)
		if int(a) < len(atoms) {
			w = atoms[a].Width
		}
		return sym.BV{W: w}
	}
	steps, _ := dd.PathSteps(atoms, root, get)
	out.Steps = make([]ExplainStep, len(steps))
	for i, st := range steps {
		out.Steps[i] = ExplainStep{Pred: st.Pred, Taken: st.Taken}
	}
	if asg != nil {
		out.Witness = make(map[string]string, len(asg))
		for a, v := range asg {
			if int(a) < len(atoms) {
				out.Witness[atoms[a].Name] = v.String()
			}
		}
	}
	return out, nil
}

// variableOrder returns the diagram core's current atom order (the
// snapshot codec persists it; diagrams themselves are rebuilt on
// restore). Nil when the core is disabled. Called under the engine
// read lock by Snapshot.
func (s *Specializer) variableOrder() []dd.Atom {
	if s.ddc == nil {
		return nil
	}
	return s.ddc.store.Load().Atoms()
}

// VariableOrder reports the diagram core's variable order — the atoms
// (match keys and value-set membership bits) in the position the
// taint-frequency heuristic assigned them, which every diagram in the
// store tests top-down. Nil when the core is disabled (NoDD). The
// order is append-only for the life of the engine and survives
// Snapshot/Restore verbatim.
func (s *Specializer) VariableOrder() []dd.Atom {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.variableOrder()
}
