// Audit-trail equivalence suite: the decision audit trail is only
// trustworthy if it is an exact transcript of what the engine did. For
// every catalog program and several fuzzer update streams, these tests
// replay the stream with auditing enabled and assert that each
// AuditRecord agrees field-for-field with the Decision the engine
// returned and with the per-point Verdict state — through sequential
// Apply and coalescing ApplyBatch, across worker pool sizes 1, 4 and
// GOMAXPROCS. Run under -race this also proves the parallel capture
// path (per-index change slots) is data-race free.
package core_test

import (
	"runtime"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/progs"
)

// auditWorkerGrid is the worker pool sizes the suite cycles through.
func auditWorkerGrid() []int {
	return []int{1, parallelWorkers, 8, 16, runtime.GOMAXPROCS(0)}
}

func loadAudited(t *testing.T, p *progs.Program, workers int) (*core.Specializer, *obs.Trail) {
	t.Helper()
	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Workers: workers, Audit: trail})
	if err != nil {
		t.Fatalf("%s: load: %v", p.Name, err)
	}
	return s, trail
}

// checkRecord asserts one audit record is an exact transcript of the
// decision the engine returned for the update, and that the recorded
// verdict transitions agree with the engine's live Verdict state.
func checkRecord(t *testing.T, s *core.Specializer, i int, d *core.Decision, rec obs.AuditRecord) {
	t.Helper()
	if rec.Decision != d.Kind.String() {
		t.Fatalf("update %d (%s): audit decision %q, engine %q", i, d.Update, rec.Decision, d.Kind)
	}
	if rec.Target != d.Update.Target() {
		t.Fatalf("update %d: audit target %q, want %q", i, rec.Target, d.Update.Target())
	}
	if rec.Update != d.Update.String() {
		t.Fatalf("update %d: audit update %q, want %q", i, rec.Update, d.Update)
	}
	if rec.Affected != d.AffectedPoints {
		t.Fatalf("update %d (%s): audit affected %d, engine %d", i, d.Update, rec.Affected, d.AffectedPoints)
	}
	if !slices.Equal(rec.Components, d.Components) {
		t.Fatalf("update %d (%s): audit components %v, engine %v", i, d.Update, rec.Components, d.Components)
	}
	if rec.ImplChange != d.ImplementationChange {
		t.Fatalf("update %d (%s): audit impl change %q, engine %q", i, d.Update, rec.ImplChange, d.ImplementationChange)
	}
	if rec.ElapsedNS != d.Elapsed.Nanoseconds() {
		t.Fatalf("update %d (%s): audit elapsed %dns, engine %dns", i, d.Update, rec.ElapsedNS, d.Elapsed.Nanoseconds())
	}
	if (rec.Err != "") != (d.Err != nil) {
		t.Fatalf("update %d (%s): audit error %q, engine error %v", i, d.Update, rec.Err, d.Err)
	}
	pts := make([]int, len(rec.Changes))
	for j, ch := range rec.Changes {
		pts[j] = ch.Point
	}
	if !slices.Equal(pts, d.ChangedPoints) {
		t.Fatalf("update %d (%s): audit change points %v, engine %v", i, d.Update, pts, d.ChangedPoints)
	}
	for _, ch := range rec.Changes {
		if ch.Query != "executable" && ch.Query != "constant" {
			t.Fatalf("update %d: change at point %d has query %q", i, ch.Point, ch.Query)
		}
		if ch.Old == ch.New {
			t.Fatalf("update %d: change at point %d records no transition (%q)", i, ch.Point, ch.Old)
		}
		if ch.Worker < 0 {
			t.Fatalf("update %d: change at point %d has worker %d", i, ch.Point, ch.Worker)
		}
	}
}

// checkTrailTotals asserts the trail's decision tally is exactly the
// engine's outcome counters — the flaybench cross-check, as a test.
func checkTrailTotals(t *testing.T, s *core.Specializer, trail *obs.Trail) {
	t.Helper()
	st := s.Statistics()
	if got := trail.Total(); got != int64(st.Updates) {
		t.Fatalf("trail total %d, engine processed %d updates", got, st.Updates)
	}
	by := trail.CountByDecision()
	if by["forward"] != st.Forwarded || by["recompile"] != st.Recompilations || by["rejected"] != st.Rejected {
		t.Fatalf("trail tally %v, engine counters forwarded=%d recompiled=%d rejected=%d",
			by, st.Forwarded, st.Recompilations, st.Rejected)
	}
}

// TestAuditMatchesSequential replays fuzzer streams through Apply with
// auditing on: every decision must land in the trail as an exact
// transcript, in sequence order, and each recorded verdict transition
// must agree with the engine's live verdict right after the update.
func TestAuditMatchesSequential(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= equivSeeds; seed++ {
				grid := auditWorkerGrid()
				workers := grid[int(seed-1)%len(grid)]
				s, trail := loadAudited(t, p, workers)
				for i, u := range makeStream(t, s, seed) {
					d := s.Apply(u)
					recs := trail.Records()
					if len(recs) != i+1 {
						t.Fatalf("update %d: trail has %d records", i, len(recs))
					}
					rec := recs[i]
					if rec.Seq != i+1 {
						t.Fatalf("update %d: audit seq %d", i, rec.Seq)
					}
					if rec.Batch != 0 {
						t.Fatalf("update %d: sequential apply recorded batch %d", i, rec.Batch)
					}
					checkRecord(t, s, i, d, rec)
					for _, ch := range rec.Changes {
						if now := s.Verdict(ch.Point).String(); now != ch.New {
							t.Fatalf("update %d: point %d verdict %q, audit says %q", i, ch.Point, now, ch.New)
						}
					}
				}
				checkTrailTotals(t, s, trail)
			}
		})
	}
}

// TestAuditMatchesBatch chunks the same streams through ApplyBatch: one
// record per update, in arrival order, carrying the batch number and
// the batch-attributed decision — field-for-field what ApplyBatch
// returned.
func TestAuditMatchesBatch(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= equivSeeds; seed++ {
				grid := auditWorkerGrid()
				workers := grid[int(seed)%len(grid)]
				s, trail := loadAudited(t, p, workers)
				stream := makeStream(t, s, seed)
				seq, batch := 0, 0
				for start := 0; start < len(stream); start += chunkSize {
					chunk := stream[start:min(start+chunkSize, len(stream))]
					ds := s.ApplyBatch(chunk)
					batch++
					recs := trail.Records()
					if len(recs) != start+len(chunk) {
						t.Fatalf("chunk at %d: trail has %d records, want %d", start, len(recs), start+len(chunk))
					}
					for i, d := range ds {
						rec := recs[start+i]
						seq++
						if rec.Seq != seq {
							t.Fatalf("update %d: audit seq %d, want %d", start+i, rec.Seq, seq)
						}
						if rec.Batch != batch {
							t.Fatalf("update %d: audit batch %d, want %d", start+i, rec.Batch, batch)
						}
						checkRecord(t, s, start+i, d, rec)
					}
				}
				checkTrailTotals(t, s, trail)
			}
		})
	}
}

// TestAuditSequentialVsBatchTally replays one stream through a
// sequential engine and a chunked batch engine, both audited: the two
// trails must agree on rejections update-for-update, and the batch
// trail's tally must match the batch engine's own counters (decision
// attribution differs by design, so kinds are compared through the
// engines' invariants, not record-for-record).
func TestAuditSequentialVsBatchTally(t *testing.T) {
	for _, p := range progs.Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			seqEng, seqTrail := loadAudited(t, p, 1)
			batEng, batTrail := loadAudited(t, p, parallelWorkers)
			stream := makeStream(t, seqEng, 5)
			for start := 0; start < len(stream); start += chunkSize {
				chunk := stream[start:min(start+chunkSize, len(stream))]
				for _, u := range chunk {
					seqEng.Apply(u)
				}
				batEng.ApplyBatch(chunk)
			}
			sameEndState(t, seqEng, batEng)
			sr, br := seqTrail.Records(), batTrail.Records()
			if len(sr) != len(br) {
				t.Fatalf("trail lengths diverged: %d vs %d", len(sr), len(br))
			}
			for i := range sr {
				if (sr[i].Decision == "rejected") != (br[i].Decision == "rejected") {
					t.Fatalf("update %d: rejection mismatch: %q vs %q", i, sr[i].Decision, br[i].Decision)
				}
			}
			checkTrailTotals(t, seqEng, seqTrail)
			checkTrailTotals(t, batEng, batTrail)
		})
	}
}

// TestAuditBoundedTrailOnEngine: a bounded trail on a live engine keeps
// the most recent records and accounts for every drop.
func TestAuditBoundedTrailOnEngine(t *testing.T) {
	p, err := progs.ByName("fig3")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 10
	trail := obs.NewTrail(limit)
	s, err := p.LoadWith(core.Options{Workers: 1, Audit: trail})
	if err != nil {
		t.Fatal(err)
	}
	stream := makeStream(t, s, 7)
	for _, u := range stream {
		s.Apply(u)
	}
	if got := trail.Total(); got != int64(len(stream)) {
		t.Fatalf("total %d, want %d", got, len(stream))
	}
	if got := trail.Dropped(); got != int64(len(stream)-limit) {
		t.Fatalf("dropped %d, want %d", got, len(stream)-limit)
	}
	recs := trail.Records()
	if len(recs) != limit {
		t.Fatalf("retained %d records, want %d", len(recs), limit)
	}
	for i, rec := range recs {
		if want := len(stream) - limit + i + 1; rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, want)
		}
	}
}
