package core

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/sym"
)

// TestPreloadEquivalentToIncremental: preloading a batch must leave the
// engine in exactly the state that applying the batch update-by-update
// produces (same verdicts, same installed implementations, same
// specialized program) — just without the per-update work.
func TestPreloadEquivalentToIncremental(t *testing.T) {
	batch := []*controlplane.Update{
		insert(ternaryEntry(0x10, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 1))),
		insert(ternaryEntry(0x11, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 2))),
		insert(ternaryEntry(0x12, 0xFF00, "drop")),
	}

	inc := newSpec(t, fig3Src, Options{})
	for _, u := range batch {
		if d := inc.Apply(u); d.Kind == Rejected {
			t.Fatal(d.Err)
		}
	}

	pre := newSpec(t, fig3Src, Options{})
	if err := pre.Preload(batch); err != nil {
		t.Fatal(err)
	}

	if got, want := pre.Cfg.NumEntries(tbl), inc.Cfg.NumEntries(tbl); got != want {
		t.Fatalf("entries %d vs %d", got, want)
	}
	for i := range inc.verdicts {
		if pre.verdicts[i] != inc.verdicts[i] {
			t.Fatalf("verdict %d differs: %v vs %v (%s)",
				i, pre.verdicts[i], inc.verdicts[i], inc.An.Points[i])
		}
	}
	if !pre.impls[tbl].equal(inc.impls[tbl]) {
		t.Fatalf("implementations differ: %+v vs %+v", pre.impls[tbl], inc.impls[tbl])
	}
	// And the very next live update gets the same decision.
	probe := insert(ternaryEntry(0x13, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 3)))
	probeCopy := insert(ternaryEntry(0x13, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 3)))
	d1 := inc.Apply(probe)
	d2 := pre.Apply(probeCopy)
	if d1.Kind != d2.Kind {
		t.Fatalf("post-preload decision differs: %v vs %v", d1.Kind, d2.Kind)
	}
}

// TestPreloadStopsAtInvalid: the first invalid update aborts the batch
// with an error, already-applied updates stay consistent.
func TestPreloadStopsAtInvalid(t *testing.T) {
	s := newSpec(t, fig3Src, Options{})
	batch := []*controlplane.Update{
		insert(ternaryEntry(0x1, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 1))),
		insert(ternaryEntry(0x2, 0xFFFFFFFFFFFF, "ghost")), // invalid
		insert(ternaryEntry(0x3, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 3))),
	}
	if err := s.Preload(batch); err == nil {
		t.Fatal("expected error from invalid update")
	}
	if s.Cfg.NumEntries(tbl) != 1 {
		t.Fatalf("entries = %d, want 1 (stop at first invalid)", s.Cfg.NumEntries(tbl))
	}
	// The applied prefix must still be reflected in the verdicts: the
	// table is configured, so a same-shape follow-up forwards or
	// recompiles exactly as after a live apply.
	d := s.Apply(insert(ternaryEntry(0x4, 0xFFFFFFFFFFFF, "set", sym.NewBV(16, 4))))
	if d.Kind == Rejected {
		t.Fatalf("follow-up rejected: %v", d.Err)
	}
}
