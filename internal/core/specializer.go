// Package core implements Flay's incremental specialization engine
// (paper §4): it combines the one-time data-plane analysis with the
// live control-plane configuration, answers specialization queries at
// every annotated program point, decides for each control-plane update
// whether the program's implementation must change (Recompile) or the
// update can be forwarded to the device as-is (Forward), and produces
// the specialized program.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/sym"
)

// VerdictKind classifies a program point's resolved behaviour.
type VerdictKind uint8

const (
	// VerdictDead: the point's condition is provably unsatisfiable.
	VerdictDead VerdictKind = iota
	// VerdictLive: the condition may hold (includes solver Unknown —
	// conservative).
	VerdictLive
	// VerdictConst: the point's value is a single constant.
	VerdictConst
	// VerdictVaries: the value is not provably constant.
	VerdictVaries
)

var verdictNames = [...]string{"dead", "live", "const", "varies"}

func (k VerdictKind) String() string {
	if int(k) < len(verdictNames) {
		return verdictNames[k]
	}
	return "verdict?"
}

// Verdict is the resolved behaviour of one program point under the
// current control-plane configuration.
type Verdict struct {
	Kind VerdictKind
	// Val holds the constant for VerdictConst.
	Val sym.BV
}

func (v Verdict) String() string {
	if v.Kind == VerdictConst {
		return fmt.Sprintf("const %s", v.Val)
	}
	return v.Kind.String()
}

// DecisionKind is the outcome of processing one control-plane update.
type DecisionKind uint8

const (
	// Forward: no program point changed behaviour; the update is
	// installed on the device without recompilation (the paper's fast
	// path).
	Forward DecisionKind = iota
	// Recompile: at least one point's verdict (or an implementation
	// assumption such as a narrowed match kind) changed; the affected
	// components must be respecialized.
	Recompile
	// Rejected: the update failed validation and was not applied.
	Rejected
)

var decisionNames = [...]string{"forward", "recompile", "rejected"}

func (k DecisionKind) String() string {
	if int(k) < len(decisionNames) {
		return decisionNames[k]
	}
	return "decision?"
}

// Decision reports what Flay did with one update.
type Decision struct {
	Kind   DecisionKind
	Update *controlplane.Update
	// AffectedPoints is how many program points the taint map routed
	// the update to.
	AffectedPoints int
	// ChangedPoints lists the IDs of points whose verdict changed.
	ChangedPoints []int
	// ImplementationChange notes a non-verdict assumption violation
	// (e.g. a ternary key narrowed to exact now needs ternary again).
	ImplementationChange string
	// Components lists the qualified names of data-plane components
	// needing recompilation.
	Components []string
	// Elapsed is the update-analysis wall time (the paper's "update
	// analysis time", Tbl. 2/3).
	Elapsed time.Duration
	// Degraded marks a decision evaluated under a degraded assignment:
	// the adaptive precision controller (deadline.go) pinned the target
	// to the overapproximation, so the verdict is conservative rather
	// than precise ("precision":"degraded" on the wire and in the audit
	// trail).
	Degraded bool
	// Err is set for Rejected decisions.
	Err error
}

func (d *Decision) String() string {
	switch d.Kind {
	case Forward:
		return fmt.Sprintf("forward %s (%d points, %v)", d.Update, d.AffectedPoints, d.Elapsed)
	case Recompile:
		return fmt.Sprintf("recompile %v after %s (%d/%d points changed, %v)",
			d.Components, d.Update, len(d.ChangedPoints), d.AffectedPoints, d.Elapsed)
	default:
		return fmt.Sprintf("rejected %s: %v", d.Update, d.Err)
	}
}

// Quality selects how aggressively the specializer rewrites the
// program — the recompilation-time vs specialization-quality tradeoff
// the paper names as future work (§6). Lower quality keeps more of the
// original implementation, so fewer control-plane updates invalidate
// it (fewer recompilations), at the price of higher resource usage.
type Quality uint8

const (
	// QualityFull applies every pass: DCE, constant propagation, table
	// inlining, dead-action removal, match-kind narrowing, parser
	// pruning. Best resource usage, most recompilation triggers.
	QualityFull Quality = iota
	// QualityNoNarrowing skips match-kind narrowing (ternary keys stay
	// ternary), removing the Fig.-3-step-4 class of recompilations for
	// tables with mask churn.
	QualityNoNarrowing
	// QualityDCEOnly additionally skips table inlining and constant
	// propagation: only dead branches, dead actions and empty tables
	// are removed.
	QualityDCEOnly
	// QualityNone performs no specialization at all: the installed
	// implementation is the original program, so no control-plane
	// update ever requires recompilation (the "fall-back datapath"
	// extreme the paper contrasts against).
	QualityNone
)

var qualityNames = [...]string{"full", "no-narrowing", "dce-only", "none"}

func (q Quality) String() string {
	if int(q) < len(qualityNames) {
		return qualityNames[q]
	}
	return "quality?"
}

// Options configures a Specializer.
type Options struct {
	// SkipParser skips parser analysis (paper §4.2, switch.p4).
	SkipParser bool
	// OverapproxThreshold overrides the per-table entry budget
	// (default 100; negative disables overapproximation — "precise
	// mode" in Tbl. 3).
	OverapproxThreshold int
	// Quality selects the specialization aggressiveness (default
	// QualityFull).
	Quality Quality
	// Workers bounds the point re-evaluation worker pool: 1 forces
	// serial evaluation, >1 sets the pool size, and <=0 (the default)
	// uses GOMAXPROCS.
	Workers int
	// NoCache disables the taint-keyed specialization-query cache
	// (cache.go). The cache is on by default; the cache-differential
	// suite and the flaybench ablation turn it off to prove and measure
	// equivalence.
	NoCache bool
	// NoDD disables the canonical decision-diagram query core (dd.go):
	// every specialization query then runs on the substitute-and-probe
	// solver path. The diagram core is on by default; the differential
	// suite and the flaybench dd section use the ablation to prove
	// verdict equivalence and measure the speedup.
	NoDD bool

	// Exec enables the data-plane executor (exec.go): every epoch
	// publication also compiles and hot-swaps an executable image of
	// the specialized program, served wait-free by Exec/ExecBatch. Off
	// by default — engines that never execute packets pay nothing.
	Exec bool

	// LockedReads is the pre-epoch ablation: read entry points
	// (Verdict, Statistics, Entries, Generation, DegradedTables) take
	// the engine read lock and read mutable state instead of loading
	// the published epoch — the seed engine's behaviour, where every
	// query contends with writers on one RWMutex. It exists for the
	// scaling benchmark's baseline and costs nothing when false.
	LockedReads bool

	// RepairInterval paces the adaptive precision controller's
	// background repair goroutine (deadline.go): after RepairInterval of
	// quiescence, degraded tables are differentially checked and
	// promoted back to precise, one per tick. Zero selects the default
	// (100ms); negative disables background repair (promotion then only
	// happens through PromoteAll).
	RepairInterval time.Duration

	// Trace, when set, records structured spans for every pipeline stage
	// (parse → dataflow → taint → query → pass). Metrics, when set,
	// resolves the engine's counters, gauges and latency histograms.
	// Audit, when set, receives one AuditRecord per decided update. All
	// three default to nil — fully disabled, with no allocation on the
	// update path.
	Trace   *obs.Trace
	Metrics *obs.Registry
	Audit   *obs.Trail
}

// Stats aggregates engine counters. The three outcome counters
// partition Updates: Updates == Forwarded + Recompilations + Rejected.
type Stats struct {
	Points         int
	Tables         int
	AnalysisTime   time.Duration // one-time data-plane analysis
	PreprocessTime time.Duration // initial verdict computation
	Updates        int
	Forwarded      int
	Recompilations int
	Rejected       int
	UpdateTime     time.Duration // cumulative update-analysis time

	// Batch engine counters (ApplyBatch).
	Batches        int // ApplyBatch invocations
	BatchedUpdates int // updates processed through ApplyBatch
	// Coalesced counts updates that shared a per-target assignment
	// recompile + point re-evaluation with at least one other update of
	// the same batch — i.e. evaluation passes the batch engine elided.
	Coalesced int

	// Parallel evaluation counters.
	EvalTime time.Duration // cumulative wall time re-evaluating points
	Workers  int           // configured worker count (0 = GOMAXPROCS)

	// Specialization-query cache counters (zero when the cache is
	// disabled). Hits are queries answered without substitution or
	// solver work; evictions count entries invalidated by the taint map
	// or displaced by the per-point way bound.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64

	// Decision-diagram query core counters (zero when the core is
	// disabled). DDQueries counts verdicts answered on the diagram
	// path, DDFallbacks queries punted to the probe solver, DDCompiles
	// root compilations, and DDNodes the interned diagram nodes.
	DDQueries   int64
	DDFallbacks int64
	DDCompiles  int64
	DDNodes     int

	// Adaptive precision controller counters (deadline.go).
	Degradations    int // tables degraded to overapproximation
	Promotions      int // tables promoted back to precise
	DegradedTables  int // tables currently degraded
	UnsoundDegraded int // unsound degraded verdicts observed (must be 0)

	// Expression-arena hygiene counters. Sustained churn interns fresh
	// constants on every update; periodic sweeps keep the hash-consing
	// arena proportional to live state instead of update history.
	ArenaNodes  int // interned expression nodes right now
	ArenaSweeps int // arena garbage collections run
	ArenaSwept  int // nodes reclaimed across all sweeps
}

// Specializer is the incremental specializing compiler.
//
// A Specializer is safe for concurrent use: mutating entry points
// (Apply, ApplyBatch, Preload, ReevaluateAll) serialize behind a write
// lock and end by publishing an immutable epoch (epoch.go), while the
// query-path readers (Verdict, Statistics, Entries, Generation,
// DegradedTables) load the published epoch wait-free — they never
// block a writer and a writer never blocks them. Heavy read entry
// points that need the full mutable state (Snapshot, DifferentialCheck,
// SpecializedProgram) share the read lock, which is what gives them a
// consistent cut against writers. Point re-evaluation inside a mutating
// call fans out over the worker pool in parallel.go, grouped by taint
// partition (shard.go).
type Specializer struct {
	Prog *ast.Program
	Info *typecheck.Info
	An   *dataplane.Analysis
	Cfg  *controlplane.Config

	// source is the program text the engine was opened from
	// (NewFromSource); snapshots embed it so Restore can re-run the
	// deterministic front half of the pipeline.
	source string

	// mu guards every field below as well as Cfg and the Builder's
	// single-threaded substitution memo.
	mu sync.RWMutex

	env      controlplane.Env
	verdicts []Verdict
	impls    map[string]*tableImpl
	stats    Stats
	quality  Quality

	// co is the cross-shard coordination layer (epoch.go): the
	// published epoch pointer, the audit-seq allocator, the arena-sweep
	// trigger, and the taint-partition shard map.
	co coord
	// verdictsDirty is set (single-threaded, in reevalPoints' epilogue)
	// when a pass changed at least one verdict; publish() clears it and
	// only then re-copies the verdict slice.
	verdictsDirty bool
	// Data-plane executor state (exec.go), all guarded by mu: exec is
	// Options.Exec; imgTargets lists the targets forwarded updates
	// touched since the last publication (incremental image rebuild);
	// imgFull forces the next publication to recompile the image from
	// the specialized program. machines pools executor machines for the
	// wait-free Exec path.
	exec       bool
	imgFull    bool
	imgTargets []string
	machines   sync.Pool
	// lockedReads selects the pre-epoch read path (Options.LockedReads).
	lockedReads bool

	// workers is the configured evaluation pool bound (Options.Workers);
	// shards holds the per-worker scratch states, grown lazily.
	workers int
	shards  []*evalShard

	// Observability (all fields are nil-safe; nil means disabled).
	trace  *obs.Trace
	audit  *obs.Trail
	met    coreMetrics
	symMet *sym.SolverMetrics
	// lastChanges is the scratch buffer reevalPoints fills with the
	// point-level verdict flips of the last pass, in point-ID order. It
	// is only populated when the audit trail is enabled.
	lastChanges []obs.PointChange

	// pointSub caches each point's last substituted expression (a
	// hash-consed pointer): when an update's substitution yields the
	// same node, the verdict cannot have changed and the query is
	// skipped entirely.
	pointSub []*sym.Expr
	// witnesses caches per-point satisfying assignments; re-evaluating
	// a cached witness is usually all it takes to re-prove liveness.
	witnesses []sym.Env

	// The taint-keyed specialization-query cache (cache.go): cache is
	// nil when disabled; pointDeps holds each point's sorted dependency
	// targets and targetFp the current assignment fingerprint per
	// target, which together form the cache key's dependency half.
	// roCache is the wait-free readers' handle on the same cache: it is
	// set once at construction and never swapped, so Statistics can read
	// the hit/miss atomics without the lock even while ReevaluateAll
	// temporarily nils the locked handle for its ablation pass.
	cache     *queryCache
	roCache   atomic.Pointer[queryCache]
	pointDeps [][]string
	targetFp  map[string]uint64

	// The decision-diagram query core (dd.go): ddc is nil when
	// disabled; roDD mirrors roCache — set once at construction, read
	// by wait-free Statistics even while ReevaluateAll temporarily nils
	// the locked handle for its ablation pass.
	ddc  *ddCore
	roDD atomic.Pointer[ddCore]

	// Adaptive precision controller state (deadline.go). costNS is the
	// per-target EWMA of precise analysis cost per tainted point (ns),
	// costGlobalNS the engine-wide fallback; degraded maps each
	// currently degraded table to its cause; repair is the configured
	// repair interval and repairOn whether the repair goroutine is live.
	costNS       map[string]float64
	costGlobalNS float64
	degraded     map[string]string
	repair       time.Duration
	repairOn     bool
	unsound      atomic.Int64 // unsound degraded verdicts ever observed
	lastApply    atomic.Int64 // unix ns of the last mutating call (quiescence)
	closedCh     chan struct{}
	closeOnce    sync.Once
}

// New builds a Specializer from parsed+checked inputs: it runs the
// data-plane analysis and the initial specialization pass under the
// empty (device-spec) configuration.
func New(prog *ast.Program, info *typecheck.Info, opts Options) (*Specializer, error) {
	root := opts.Trace.Start("open", 0)
	defer opts.Trace.End(root)
	t0 := time.Now()
	an, err := dataplane.Analyze(prog, info, dataplane.Options{
		SkipParser: opts.SkipParser,
		Trace:      opts.Trace,
		Parent:     root,
		Metrics:    opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	analysisTime := time.Since(t0)

	cfg := controlplane.NewConfig(an)
	cfg.OverapproxThreshold = opts.OverapproxThreshold
	cfg.SetObserver(opts.Metrics)
	s := &Specializer{
		Prog:        prog,
		Info:        info,
		An:          an,
		Cfg:         cfg,
		impls:       make(map[string]*tableImpl),
		quality:     opts.Quality,
		workers:     opts.Workers,
		lockedReads: opts.LockedReads,
		exec:        opts.Exec,
		trace:       opts.Trace,
		audit:       opts.Audit,
		met:         newCoreMetrics(opts.Metrics),
		symMet:      sym.NewSolverMetrics(opts.Metrics),
		repair:      opts.RepairInterval,
		closedCh:    make(chan struct{}),
	}
	if !opts.NoCache {
		s.cache = newQueryCache(len(an.Points))
		s.roCache.Store(s.cache)
	}
	if !opts.NoDD {
		s.ddc = newDDCore(an, nil)
		s.roDD.Store(s.ddc)
	}
	t1 := time.Now()
	sp := s.trace.Start("preprocess", root)
	if err := s.initState(); err != nil {
		return nil, err
	}
	// Initial preprocessing: every point's verdict under the empty
	// assignment, fanned out over the worker pool (the changed-IDs
	// return is irrelevant against zero-valued verdicts).
	s.reevalPoints(an.Points)
	for name := range an.Tables {
		s.impls[name] = s.idealImpl(name)
	}
	s.trace.Attr(sp, "points", int64(len(an.Points)))
	s.trace.End(sp)
	s.met.points.Set(int64(len(an.Points)))
	s.met.tables.Set(int64(len(an.Tables)))
	s.stats = Stats{
		Points:         len(an.Points),
		Tables:         len(an.Tables),
		AnalysisTime:   analysisTime,
		PreprocessTime: time.Since(t1),
		Workers:        opts.Workers,
	}
	// Publish the open-time epoch before the engine escapes: readers
	// may load it the moment New returns.
	s.publish()
	return s, nil
}

// NewFromSource parses, checks and analyzes a program in one call.
func NewFromSource(name, src string, opts Options) (*Specializer, error) {
	sp := opts.Trace.Start("parse", 0)
	prog, err := parser.Parse(name, src)
	opts.Trace.End(sp)
	if err != nil {
		return nil, err
	}
	sp = opts.Trace.Start("typecheck", 0)
	info, err := typecheck.Check(prog)
	opts.Trace.End(sp)
	if err != nil {
		return nil, err
	}
	s, err := New(prog, info, opts)
	if err != nil {
		return nil, err
	}
	s.source = src
	return s, nil
}

// initState allocates the per-point state and compiles the full
// control-plane environment one target at a time, seeding each target's
// assignment fingerprint (New and Restore share it).
func (s *Specializer) initState() error {
	an := s.An
	s.env = make(controlplane.Env)
	s.targetFp = make(map[string]uint64, len(an.Tables))
	s.pointDeps = buildPointDeps(an)
	s.co.shards = buildShardMap(an, s.pointDeps)
	s.met.initShards(s.co.shards.count)
	s.verdicts = make([]Verdict, len(an.Points))
	s.pointSub = make([]*sym.Expr, len(an.Points))
	s.witnesses = make([]sym.Env, len(an.Points))
	// Deterministic target order: compile-time state (register refill
	// variables become diagram atoms as they appear) must not depend on
	// map iteration, or restored engines could walk diagrams in a
	// different variable order than the engine that snapshotted them.
	for _, name := range sortedNames(an.Tables) {
		if err := s.recompileTarget(name); err != nil {
			return err
		}
	}
	// ValueSets is keyed by alias as well as canonical name; targets are
	// the deduped canonical names, sorted for the same determinism.
	seenVS := make(map[string]bool, len(an.ValueSets))
	vsNames := make([]string, 0, len(an.ValueSets))
	for _, vi := range an.ValueSets {
		if !seenVS[vi.Name] {
			seenVS[vi.Name] = true
			vsNames = append(vsNames, vi.Name)
		}
	}
	sortStrings(vsNames)
	for _, name := range vsNames {
		if err := s.recompileTarget(name); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(an.Registers) {
		if err := s.recompileTarget(name); err != nil {
			return err
		}
	}
	return nil
}

// Statistics returns a copy of the engine counters as of the published
// epoch. It is wait-free (one atomic load, no lock) and may be called
// concurrently with Apply/ApplyBatch from any number of goroutines
// without ever blocking a writer. The cache and unsound counters are
// overlaid live from their atomics; everything else is the consistent
// cut the last mutating call published.
func (s *Specializer) Statistics() Stats {
	var st Stats
	if s.lockedReads {
		s.mu.RLock()
		st = s.stats
		st.DegradedTables = len(s.degraded)
		st.ArenaNodes = s.An.Builder.NumNodes()
		s.mu.RUnlock()
	} else {
		st = s.loadEpoch().stats
	}
	if c := s.roCache.Load(); c != nil {
		st.CacheHits = c.hits.Load()
		st.CacheMisses = c.misses.Load()
		st.CacheEvictions = c.evictions.Load()
	}
	if d := s.roDD.Load(); d != nil {
		st.DDQueries = d.queries.Load()
		st.DDFallbacks = d.fallbacks.Load()
		st.DDCompiles = d.compiles.Load()
		st.DDNodes = d.store.Load().NumNodes()
	}
	st.UnsoundDegraded = int(s.unsound.Load())
	return st
}

// Entries returns the live entry count of a table as of the published
// epoch. Like Statistics it is wait-free and safe to call concurrently
// with Apply/ApplyBatch.
func (s *Specializer) Entries(table string) int {
	if s.lockedReads {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.Cfg.NumEntries(table)
	}
	return s.loadEpoch().entries[table]
}

// ReevaluateAll recomputes every program point's verdict from scratch,
// bypassing the taint map and the per-point caches. It exists as the
// ablation baseline: this is the work a non-incremental specializing
// compiler performs on every control-plane update (§2: "recompiling the
// data-plane program every time the control-plane issues an update").
// It returns the number of points whose verdict differs from the cached
// one (always zero when the engine is consistent).
func (s *Specializer) ReevaluateAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	s.imgMarkFull()
	for _, p := range s.An.Points {
		s.pointSub[p.ID] = nil
		s.witnesses[p.ID] = nil
	}
	// The ablation baseline must not be rescued by the query cache:
	// disable it for the duration of the pass. Entries left behind stay
	// valid (their keys are exact), so re-enabling it afterwards is
	// sound.
	cache := s.cache
	s.cache = nil
	// Same for the diagram core: the baseline measures the solver path.
	ddc := s.ddc
	s.ddc = nil
	t0 := time.Now()
	changed := s.reevalPoints(s.An.Points)
	s.stats.EvalTime += time.Since(t0)
	s.cache = cache
	s.ddc = ddc
	return len(changed)
}

// Preload installs a batch of updates as initial configuration state,
// without per-update incremental analysis: the configuration is applied
// first, then the affected assignments and point verdicts are
// recomputed once. This mirrors the paper's Tbl.-3 methodology
// ("initialize this ACL table with varying number of entries, then send
// a single update and measure") — initialization is not what is being
// timed. The first invalid update aborts with an error; already-applied
// updates stay applied (their verdicts are still refreshed).
func (s *Specializer) Preload(updates []*controlplane.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	s.imgMarkFull()
	targets := make(map[string]bool)
	var firstErr error
	for _, u := range updates {
		if err := s.Cfg.Apply(u); err != nil {
			firstErr = err
			break
		}
		targets[u.Target()] = true
	}
	names := make([]string, 0, len(targets))
	for target := range targets {
		names = append(names, target)
		if err := s.recompileTarget(target); err != nil {
			return err
		}
	}
	t0 := time.Now()
	s.reevalPoints(s.An.PointsOfTargets(names))
	s.stats.EvalTime += time.Since(t0)
	for target := range targets {
		if _, ok := s.An.Tables[target]; ok {
			s.impls[target] = s.idealImpl(target)
		}
	}
	return firstErr
}

// recompileTarget recompiles the environment fragment of one touched
// object — the assignment of its control-plane variables — leaving the
// rest of the environment untouched. Dispatch is by the object's schema
// class; a successfully applied update always targets a known object.
// The fragment's fingerprint is refreshed, and when it changed, the
// taint map evicts the query-cache entries it invalidates (cache.go).
func (s *Specializer) recompileTarget(target string) error {
	b := s.An.Builder
	var frag controlplane.Env
	switch {
	case s.An.Tables[target] != nil:
		te, _, err := s.Cfg.CompileTable(b, target)
		if err != nil {
			return err
		}
		frag = te
	case s.An.Registers[target] != nil:
		frag = s.Cfg.CompileRegister(b, target)
	default:
		frag = s.Cfg.CompileValueSet(b, target)
	}
	for k, v := range frag {
		s.env[k] = v
	}
	if s.ddc != nil {
		s.ddc.ensureAtoms(frag)
	}
	fp := controlplane.EnvFingerprint(frag)
	if old, ok := s.targetFp[target]; !ok || old != fp {
		s.targetFp[target] = fp
		if ok {
			s.evictStale(target)
		}
	}
	return nil
}

// Verdict returns the verdict of a point as of the published epoch —
// one atomic load plus an index into the epoch's frozen verdict copy,
// wait-free against concurrent writers.
func (s *Specializer) Verdict(id int) Verdict {
	if s.lockedReads {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.verdicts[id]
	}
	return s.loadEpoch().verdicts[id]
}

// evalPointWith answers one point's specialization query using the
// given worker shard's solver and substitution memo. Three layers
// short-circuit, cheapest first: the taint-keyed query cache replays a
// memoized verdict without substituting at all; hash-consing makes the
// substituted expression a canonical pointer, so an unchanged pointer
// means an unchanged verdict; and liveness witnesses from previous
// queries are retried before the solver searches.
func (s *Specializer) evalPointWith(sh *evalShard, p *dataplane.Point) Verdict {
	var key cacheKey
	if s.cache != nil {
		key = cacheKey{expr: p.Expr.Canon(), dep: s.depFp(p.ID)}
		if e, ok := s.cache.lookup(p.ID, key); ok {
			s.met.cacheHits.Inc()
			if e.witness != nil {
				s.witnesses[p.ID] = e.witness
			}
			// The hit skipped substitution, so the substituted-pointer
			// memo no longer describes the installed verdict; drop it
			// rather than let a later pointer-equal substitution pair a
			// stale pointer with a cache-era verdict.
			s.pointSub[p.ID] = nil
			return e.verdict
		}
		s.met.cacheMisses.Inc()
	}
	b := s.An.Builder
	sub := b.SubstWith(&sh.sub, p.Expr, s.env)
	if s.pointSub[p.ID] == sub && sub != nil {
		s.met.substSkips.Inc()
		v := s.verdicts[p.ID]
		s.storeCached(p.ID, key, v)
		return v
	}
	s.pointSub[p.ID] = sub
	v := s.queryAny(sh, p, sub)
	s.storeCached(p.ID, key, v)
	return v
}

// storeCached memoizes a freshly computed verdict together with the
// point's current liveness witness (a hint only — it cannot change the
// replayed verdict, just speed up later re-proofs).
func (s *Specializer) storeCached(id int, key cacheKey, v Verdict) {
	if s.cache == nil {
		return
	}
	if s.cache.store(id, key, v, s.witnesses[id]) {
		s.met.cacheEvictions.Inc()
	}
}

// queryPoint answers the point's specialization query on the
// substituted residue.
func (s *Specializer) queryPoint(sh *evalShard, p *dataplane.Point, sub *sym.Expr) Verdict {
	switch p.Kind {
	case dataplane.PointIfBranch, dataplane.PointActionReach,
		dataplane.PointTableReach, dataplane.PointSelectCase:
		verdict, witness := sh.solver.CheckWitness(sub, s.witnesses[p.ID])
		if verdict == sym.Unsat {
			return Verdict{Kind: VerdictDead}
		}
		if verdict == sym.Sat {
			s.witnesses[p.ID] = witness
		}
		return Verdict{Kind: VerdictLive}
	case dataplane.PointAssignValue, dataplane.PointTableAction:
		res := sh.solver.ConstValue(sub)
		if res.Known && res.IsConst {
			return Verdict{Kind: VerdictConst, Val: res.Val}
		}
		return Verdict{Kind: VerdictVaries}
	default:
		return Verdict{Kind: VerdictLive}
	}
}

// Apply processes one control-plane update: validate, route through the
// taint map, re-evaluate only the affected points, and decide Forward
// vs Recompile (paper Fig. 2). Equivalent to ApplyCtx with a background
// context (no latency budget: the analysis always runs precise).
func (s *Specializer) Apply(u *controlplane.Update) *Decision {
	return s.ApplyCtx(context.Background(), u)
}

// ApplyCtx is Apply with a latency budget: when ctx carries a deadline
// and the projected precise analysis cost of the update does not fit
// the remaining budget, the adaptive precision controller (deadline.go)
// degrades the target table to the overapproximated assignment before
// analysing — keeping the call under its budget at the price of a
// conservative (never wrong) verdict. A context that is already done on
// entry rejects the update with flayerr.ErrDeadlineExceeded (or the
// cancellation cause) without touching any state.
func (s *Specializer) ApplyCtx(ctx context.Context, u *controlplane.Update) *Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.lastApply.Store(time.Now().UnixNano())
	defer s.publish() // runs after the sweep: the epoch sees final arena counts
	defer s.maybeSweepArena()
	return s.applyLocked(ctx, u)
}

func (s *Specializer) applyLocked(ctx context.Context, u *controlplane.Update) *Decision {
	t0 := time.Now()
	d := &Decision{Update: u}
	seq := s.co.nextSeq()
	s.stats.Updates = seq
	s.met.updates.Inc()
	s.lastChanges = s.lastChanges[:0]
	sp := s.trace.Start("update", 0)
	defer func() {
		s.trace.Attr(sp, "seq", int64(seq))
		s.trace.Attr(sp, "decision", int64(d.Kind))
		s.trace.End(sp)
		s.met.decisionCounter(d.Kind).Inc()
		s.met.updateNS.ObserveDuration(d.Elapsed)
		if s.audit != nil {
			workers := 0
			if d.AffectedPoints > 0 {
				workers = s.effectiveWorkers(d.AffectedPoints)
			}
			s.audit.Append(auditRecord(d, seq, 0, workers, s.lastChanges))
		}
	}()
	// Admission: a closed engine or an already-exhausted budget rejects
	// the update before any configuration state is touched.
	if err := s.admit(ctx); err != nil {
		s.stats.Rejected++
		d.Kind = Rejected
		d.Err = err
		d.Elapsed = time.Since(t0)
		return d
	}
	if err := s.Cfg.Apply(u); err != nil {
		s.stats.Rejected++
		d.Kind = Rejected
		d.Err = err
		d.Elapsed = time.Since(t0)
		return d
	}
	target := u.Target()

	// With specialization disabled the installed implementation is the
	// original program; nothing a valid update does can invalidate it.
	if s.quality == QualityNone {
		s.imgMark(target)
		s.stats.Forwarded++
		d.Kind = Forward
		d.Elapsed = time.Since(t0)
		s.stats.UpdateTime += d.Elapsed
		return d
	}

	// Deadline policy (deadline.go): if the projected precise analysis
	// cost of this update does not fit the remaining budget, pin the
	// target to the overapproximated assignment before compiling, so the
	// expensive precise ite chain is never built.
	pts := s.An.PointsOf(target)
	s.maybeDegrade(ctx, target, len(pts))
	if _, deg := s.degraded[target]; deg {
		d.Degraded = true
	}

	// Recompile the assignment for the touched object only; the rest of
	// the environment is unchanged.
	tc := time.Now()
	csp := s.trace.Start("assign-compile", sp)
	err := s.recompileTarget(target)
	s.trace.End(csp)
	if err != nil {
		// The configuration already changed: the next image must not
		// assume the previous epoch's is patchable.
		s.imgMarkFull()
		s.stats.Rejected++
		d.Kind = Rejected
		d.Err = err
		d.Elapsed = time.Since(t0)
		return d
	}

	// Taint lookup → affected points → re-query, fanned out over the
	// worker pool when the update taints enough points.
	d.AffectedPoints = len(pts)
	te := time.Now()
	qsp := s.trace.Start("query", sp)
	d.ChangedPoints = s.reevalPoints(pts)
	s.trace.Attr(qsp, "points", int64(len(pts)))
	s.trace.Attr(qsp, "changed", int64(len(d.ChangedPoints)))
	s.trace.End(qsp)
	evalElapsed := time.Since(te)
	s.stats.EvalTime += evalElapsed
	s.met.evalNS.ObserveDuration(evalElapsed)
	// A precise pass (assignment compile + re-evaluation) feeds the
	// cost estimator; degraded and statically overapproximated passes
	// run the flat path and would poison it.
	if !s.Cfg.Overapproximated(target) {
		s.observeCost(target, time.Since(tc), len(pts))
	}

	// Implementation-assumption check: a narrowed implementation may be
	// invalidated by an update even when no query verdict flips (the
	// Fig. 3 C→D step: a masked entry forces the table back to
	// ternary).
	changedImpls := s.changedImpls(target, d)

	if len(d.ChangedPoints) == 0 && len(changedImpls) == 0 {
		// Forward: the specialized program is unchanged, so the image
		// only needs the touched target patched.
		s.imgMark(target)
		s.stats.Forwarded++
		d.Kind = Forward
		d.Elapsed = time.Since(t0)
		s.stats.UpdateTime += d.Elapsed
		return d
	}

	// Respecialization: adopt the new ideal implementations for the
	// affected components.
	s.imgMarkFull()
	d.Kind = Recompile
	s.stats.Recompilations++
	comps := map[string]bool{}
	for name := range changedImpls {
		comps[name] = true
		s.impls[name] = changedImpls[name]
	}
	for _, id := range d.ChangedPoints {
		p := s.An.Points[id]
		switch {
		case p.Table != "":
			comps[p.Table] = true
			s.impls[p.Table] = s.idealImpl(p.Table)
		case p.ParserState != "":
			comps[p.Control+".parser"] = true
		default:
			comps[p.Control] = true
		}
	}
	for c := range comps {
		d.Components = append(d.Components, c)
	}
	sortStrings(d.Components)
	d.Elapsed = time.Since(t0)
	s.stats.UpdateTime += d.Elapsed
	return d
}

// changedImpls compares the installed implementation of the update's
// target table against the ideal one.
func (s *Specializer) changedImpls(target string, d *Decision) map[string]*tableImpl {
	out := make(map[string]*tableImpl)
	if _, ok := s.An.Tables[target]; !ok {
		return out
	}
	ideal := s.idealImpl(target)
	cur := s.impls[target]
	if cur == nil || !cur.equal(ideal) {
		out[target] = ideal
		if cur != nil {
			d.ImplementationChange = cur.diff(ideal)
		}
	}
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
