package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/flayerr"
	"repro/internal/obs"
	"repro/internal/sym"
)

// The adaptive precision controller. The paper's Tbl. 3 shows precise
// update analysis collapsing with table size (~1 ms at 1 entry →
// minutes at 10000) while the overapproximated ("*any*") assignment
// stays flat. The static OverapproxThreshold picks one point on that
// curve at open time; this controller moves along it at run time:
//
//   - every Apply/ApplyBatch may carry a context deadline (the caller's
//     latency budget);
//   - the engine keeps a per-table EWMA of the precise analysis cost
//     per tainted point, seeded by the first precise pass and refreshed
//     on every one after;
//   - when the projected precise cost of the pending update exceeds the
//     remaining budget, the target table is degraded mid-flight: its
//     assignment is pinned to the overapproximation
//     (controlplane.ForceOverapprox), which keeps this and every later
//     update to the table on the flat path;
//   - a background repair goroutine watches for quiescence (no updates
//     for one repair interval), re-runs the degraded queries precisely
//     (the differential check), and promotes tables back to precise.
//
// Soundness is by construction: the overapproximated assignment gives
// the solver strictly less information, so a degraded verdict can only
// be conservative — Live where precise would prove Dead, Varies where
// precise would prove Const. The differential check and every
// promotion verify that direction and count violations (which would
// indicate an engine bug, not a modelling choice) in
// Stats.UnsoundDegraded.

const (
	// ewmaAlpha weights the newest precise-cost sample. High enough to
	// track a table whose per-update cost grows as entries accumulate.
	ewmaAlpha = 0.5
	// deadlineHeadroom is the fraction of the remaining budget the
	// projected precise cost may consume before the engine degrades —
	// the slack covers estimation lag and the overapproximated pass
	// itself.
	deadlineHeadroom = 0.8
	// defaultRepairInterval is the background repair cadence when
	// Options.RepairInterval is zero.
	defaultRepairInterval = 100 * time.Millisecond
)

// degradeCause labels why a table was degraded, for the audit trail.
const (
	causeDeadline = "deadline"
	causeManual   = "manual"
)

// repairInterval resolves the configured repair cadence.
func (s *Specializer) repairInterval() time.Duration {
	if s.repair > 0 {
		return s.repair
	}
	return defaultRepairInterval
}

// Close releases the engine's background resources (the repair
// goroutine). Updates submitted after Close are rejected with
// flayerr.ErrClosed. Close is idempotent and safe to call concurrently
// with updates.
func (s *Specializer) Close() {
	s.closeOnce.Do(func() { close(s.closedCh) })
}

func (s *Specializer) isClosed() bool {
	select {
	case <-s.closedCh:
		return true
	default:
		return false
	}
}

// admit is the entry gate of every mutating ctx-carrying call: a closed
// engine and an already-exhausted budget reject the update before any
// state is touched.
func (s *Specializer) admit(ctx context.Context) error {
	if s.isClosed() {
		return fmt.Errorf("core: %w", flayerr.ErrClosed)
	}
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("core: update not attempted: %w", flayerr.ErrDeadlineExceeded)
	default:
		return fmt.Errorf("core: update not attempted: %w", err)
	}
}

// observeCost feeds one precise pass (assignment compile + point
// re-evaluation over npts points) into the estimator.
func (s *Specializer) observeCost(target string, elapsed time.Duration, npts int) {
	if npts < 1 {
		npts = 1
	}
	s.observePerPoint(target, float64(elapsed.Nanoseconds())/float64(npts))
}

func (s *Specializer) observePerPoint(target string, perNS float64) {
	if perNS <= 0 {
		return
	}
	if s.costNS == nil {
		s.costNS = make(map[string]float64)
	}
	if old, ok := s.costNS[target]; ok {
		s.costNS[target] = ewmaAlpha*perNS + (1-ewmaAlpha)*old
	} else {
		s.costNS[target] = perNS
	}
	if s.costGlobalNS > 0 {
		s.costGlobalNS = ewmaAlpha*perNS + (1-ewmaAlpha)*s.costGlobalNS
	} else {
		s.costGlobalNS = perNS
	}
}

// projectNS estimates the precise analysis cost of one update to target
// in nanoseconds: the per-point EWMA (the target's own, falling back to
// the engine-wide one for a table that has never been measured) times
// the number of points the taint map routes the update to. Zero means
// "no estimate yet" — the first pass always runs precise and seeds it.
func (s *Specializer) projectNS(target string, npts int) float64 {
	per := s.costNS[target]
	if per <= 0 {
		per = s.costGlobalNS
	}
	return per * float64(npts)
}

// degradable reports whether the controller may degrade this target: a
// table (value sets and registers have no overapproximated form), not
// already degraded, and not already past the static threshold (then the
// precise path is not being taken anyway).
func (s *Specializer) degradable(target string) bool {
	if s.quality == QualityNone {
		return false
	}
	if _, ok := s.An.Tables[target]; !ok {
		return false
	}
	if _, deg := s.degraded[target]; deg {
		return false
	}
	return s.Cfg.NumEntries(target) <= s.Cfg.Threshold()
}

// maybeDegrade applies the deadline policy for a single-update Apply:
// degrade the target when the projected precise cost does not fit the
// remaining budget. Reports whether it degraded.
func (s *Specializer) maybeDegrade(ctx context.Context, target string, npts int) bool {
	deadline, ok := ctx.Deadline()
	if !ok || !s.degradable(target) {
		return false
	}
	proj := s.projectNS(target, npts)
	if proj <= 0 {
		return false
	}
	if proj <= deadlineHeadroom*float64(time.Until(deadline).Nanoseconds()) {
		return false
	}
	s.degradeLocked(target, causeDeadline)
	return true
}

// shedForBatch applies the deadline policy for ApplyBatch: project the
// precise cost of every live target, and degrade the most expensive
// degradable ones until the projected total fits the remaining budget.
func (s *Specializer) shedForBatch(ctx context.Context, targets []string) {
	deadline, ok := ctx.Deadline()
	if !ok {
		return
	}
	type cand struct {
		target string
		proj   float64
	}
	var cands []cand
	total := 0.0
	for _, t := range targets {
		proj := s.projectNS(t, len(s.An.PointsOf(t)))
		total += proj
		if proj > 0 && s.degradable(t) {
			cands = append(cands, cand{t, proj})
		}
	}
	budget := deadlineHeadroom * float64(time.Until(deadline).Nanoseconds())
	sort.Slice(cands, func(i, j int) bool { return cands[i].proj > cands[j].proj })
	for _, c := range cands {
		if total <= budget {
			return
		}
		s.degradeLocked(c.target, causeDeadline)
		total -= c.proj
	}
}

// degradeLocked pins the target's assignment to the overapproximation
// and records the transition. The caller holds the write lock; the next
// recompileTarget call renders the cheap "*any*" fragment (changing the
// fragment fingerprint, which evicts the stale cache entries).
func (s *Specializer) degradeLocked(target, cause string) {
	s.imgMarkFull() // precision changes can reshape the specialized program
	s.Cfg.ForceOverapprox(target, true)
	if s.degraded == nil {
		s.degraded = make(map[string]string)
	}
	s.degraded[target] = cause
	s.stats.Degradations++
	s.stats.DegradedTables = len(s.degraded)
	s.met.degradations.Inc()
	s.met.degradedTables.Set(int64(len(s.degraded)))
	s.audit.Append(precisionRecord("degrade", target, cause, s.stats.Updates, 0))
	s.ensureRepairLocked()
}

// Degrade pins a table to the overapproximated assignment now — the
// operator-facing form of what the deadline policy does mid-flight —
// and re-evaluates the affected points under it. A table already
// degraded is a no-op.
func (s *Specializer) Degrade(table string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	if _, ok := s.An.Tables[table]; !ok {
		return fmt.Errorf("core: %w %s", flayerr.ErrUnknownTable, table)
	}
	if _, deg := s.degraded[table]; deg {
		return nil
	}
	s.degradeLocked(table, causeManual)
	if err := s.recompileTarget(table); err != nil {
		return err
	}
	changed := s.reevalPoints(s.An.PointsOf(table))
	s.adoptImpls(table, changed)
	return nil
}

// promoteLocked returns one degraded table to the precise assignment:
// recompile precisely, re-run the affected queries, and verify that
// every verdict flip is in the conservative direction (degraded Live →
// precise Dead, degraded Varies → precise Const). Flips the other way
// are unsound and counted. The fresh precise pass also re-seeds the
// cost estimator.
func (s *Specializer) promoteLocked(target, cause string) (unsound int, err error) {
	s.imgMarkFull() // precision changes can reshape the specialized program
	s.Cfg.ForceOverapprox(target, false)
	t0 := time.Now()
	if err := s.recompileTarget(target); err != nil {
		s.Cfg.ForceOverapprox(target, true)
		return 0, err
	}
	pts := s.An.PointsOf(target)
	before := make([]Verdict, len(pts))
	for i, p := range pts {
		before[i] = s.verdicts[p.ID]
	}
	changed := s.reevalPoints(pts)
	s.observeCost(target, time.Since(t0), len(pts))
	for i, p := range pts {
		if unsoundFlip(before[i], s.verdicts[p.ID]) {
			unsound++
		}
	}
	s.adoptImpls(target, changed)
	delete(s.degraded, target)
	s.stats.Promotions++
	s.stats.DegradedTables = len(s.degraded)
	s.unsound.Add(int64(unsound))
	s.met.promotions.Inc()
	s.met.unsoundDegraded.Add(int64(unsound))
	s.met.degradedTables.Set(int64(len(s.degraded)))
	s.audit.Append(precisionRecord("promote", target, cause, s.stats.Updates, unsound))
	return unsound, nil
}

// adoptImpls refreshes the installed implementations after a precision
// transition's re-evaluation, preserving the engine invariant that the
// installed implementation equals the ideal one: the target itself
// (idealMatchKinds consults the overapproximation state even when no
// verdict flips) plus the table of every flipped point.
func (s *Specializer) adoptImpls(target string, changed []int) {
	if _, ok := s.An.Tables[target]; ok {
		s.impls[target] = s.idealImpl(target)
	}
	for _, id := range changed {
		if t := s.An.Points[id].Table; t != "" && t != target {
			s.impls[t] = s.idealImpl(t)
		}
	}
}

// PromoteAll promotes every degraded table back to precise now,
// returning the number of unsound flips observed (zero on a healthy
// engine). The deterministic counterpart of the background repair loop,
// for tests and operators.
func (s *Specializer) PromoteAll() (unsound int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publish()
	for _, target := range sortedKeys(s.degraded) {
		u, e := s.promoteLocked(target, causeManual)
		unsound += u
		if e != nil && err == nil {
			err = e
		}
	}
	return unsound, err
}

// DegradedTables lists the currently degraded tables, sorted. Like the
// other query-path readers it serves the published epoch wait-free.
func (s *Specializer) DegradedTables() []string {
	if s.lockedReads {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return sortedKeys(s.degraded)
	}
	return append([]string(nil), s.loadEpoch().degraded...)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// unsoundFlip classifies one verdict transition from a degraded to a
// precise evaluation. The degraded verdict must be conservative:
// anything the precise analysis proves (Dead, Const) the degraded one
// may only have weakened (to Live, Varies) — never claimed more.
func unsoundFlip(degraded, precise Verdict) bool {
	switch degraded.Kind {
	case VerdictDead:
		return precise.Kind != VerdictDead
	case VerdictConst:
		return precise.Kind != VerdictConst || precise.Val != degraded.Val
	default:
		return false
	}
}

// DifferentialCheck re-runs the specialization queries of every point
// tainted by a degraded table against the precise assignment, without
// touching engine state, and reports how many installed (degraded)
// verdicts are unsound relative to the precise answer. It takes only
// the read lock, so the repair loop runs it concurrently with readers;
// a healthy engine always reports zero unsound.
func (s *Specializer) DifferentialCheck() (checked, unsoundCount int, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	targets := sortedKeys(s.degraded)
	if len(targets) == 0 {
		return 0, 0, nil
	}
	b := s.An.Builder
	// One overlay with every degraded table rendered precisely; the
	// engine's env supplies the rest. The overlay is local — installed
	// state is not touched.
	overlay := make(controlplane.Env, len(s.env))
	for k, v := range s.env {
		overlay[k] = v
	}
	for _, target := range targets {
		frag, _, ferr := s.Cfg.CompileTablePrecise(b, target)
		if ferr != nil {
			return 0, 0, ferr
		}
		for k, v := range frag {
			overlay[k] = v
		}
	}
	solver := sym.NewSolver()
	solver.Metrics = s.symMet
	var scratch sym.SubstScratch
	seen := make(map[int]bool)
	for _, target := range targets {
		for _, p := range s.An.PointsOf(target) {
			if seen[p.ID] {
				continue
			}
			seen[p.ID] = true
			sub := b.SubstWith(&scratch, p.Expr, overlay)
			precise := queryPointPure(solver, p, sub)
			checked++
			if unsoundFlip(s.verdicts[p.ID], precise) {
				unsoundCount++
			}
		}
	}
	s.unsound.Add(int64(unsoundCount))
	s.met.unsoundDegraded.Add(int64(unsoundCount))
	s.met.diffChecks.Inc()
	return checked, unsoundCount, nil
}

// queryPointPure answers one specialization query without touching any
// per-point engine state (witnesses, substitution memos, cache) — the
// read-only evaluation the differential check uses.
func queryPointPure(solver *sym.Solver, p *dataplane.Point, sub *sym.Expr) Verdict {
	switch p.Kind {
	case dataplane.PointIfBranch, dataplane.PointActionReach,
		dataplane.PointTableReach, dataplane.PointSelectCase:
		verdict, _ := solver.CheckWitness(sub, nil)
		if verdict == sym.Unsat {
			return Verdict{Kind: VerdictDead}
		}
		return Verdict{Kind: VerdictLive}
	case dataplane.PointAssignValue, dataplane.PointTableAction:
		res := solver.ConstValue(sub)
		if res.Known && res.IsConst {
			return Verdict{Kind: VerdictConst, Val: res.Val}
		}
		return Verdict{Kind: VerdictVaries}
	default:
		return Verdict{Kind: VerdictLive}
	}
}

// ensureRepairLocked starts the background repair goroutine if it is
// not running, repair is enabled, and there is something to repair.
// Caller holds the write lock. The goroutine exits as soon as the
// degraded set empties, so an engine that never degrades never carries
// one, and an abandoned degraded engine sheds it after repair completes
// (quiescence always arrives once updates stop).
func (s *Specializer) ensureRepairLocked() {
	if s.repairOn || s.repair < 0 || len(s.degraded) == 0 || s.isClosed() {
		return
	}
	s.repairOn = true
	go s.repairLoop()
}

// repairLoop is the background promotion driver: every interval it
// checks for quiescence (no mutating call within the last interval),
// runs the differential check over the degraded set, and promotes one
// table — bounding each write-lock hold — until nothing is degraded.
func (s *Specializer) repairLoop() {
	interval := s.repairInterval()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.closedCh:
			s.mu.Lock()
			s.repairOn = false
			s.mu.Unlock()
			return
		case <-tick.C:
		}
		if time.Now().UnixNano()-s.lastApply.Load() < interval.Nanoseconds() {
			continue // traffic within the window: not quiescent
		}
		// The read-only differential pass first: it is what makes
		// degraded verdicts auditable even before promotion lands.
		if _, _, err := s.DifferentialCheck(); err != nil {
			continue
		}
		s.mu.Lock()
		if s.isClosed() {
			s.repairOn = false
			s.mu.Unlock()
			return
		}
		if targets := sortedKeys(s.degraded); len(targets) > 0 {
			// Errors leave the table degraded; the next tick retries.
			_, _ = s.promoteLocked(targets[0], "quiescent")
			s.publish()
		}
		if len(s.degraded) == 0 {
			s.repairOn = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// precisionRecord is the audit-trail entry for a degrade/promote
// transition. Seq is the update sequence number the transition landed
// at (keeping the trail's Seq ordering monotone for ?since= readers).
func precisionRecord(decision, target, cause string, seq, unsound int) obs.AuditRecord {
	rec := obs.AuditRecord{
		Seq:       seq,
		Target:    target,
		Update:    "precision " + cause,
		Decision:  decision,
		Precision: decision + "d", // "degraded" / "promoted"
	}
	if unsound > 0 {
		rec.Err = fmt.Sprintf("%d unsound degraded verdicts", unsound)
	}
	return rec
}
