// End-to-end fleet suite: a real front door over real shards, each an
// active flayd replicating to a standby. The headline test kills one
// active abruptly mid-churn and requires the fleet to come out the
// other side with exactly-once semantics: every acknowledged write
// applied exactly once on the promoted standby, audit sequence
// continuous, and the survivors untouched.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/server"
	"repro/internal/sym"
	"repro/internal/wire"
)

// shardHandle bundles one shard's processes with the levers the test
// pulls: an abrupt active kill, and address bookkeeping.
type shardHandle struct {
	cfg       cluster.ShardConfig
	activeSrv *server.Server
	activeWeb *http.Server
	activeBin net.Listener
}

// kill tears the active down the way a crash would: every listener and
// every live connection closed immediately, no draining.
func (h *shardHandle) kill() {
	h.activeWeb.Close()
	h.activeBin.Close()
}

func startShard(t *testing.T, name string) *shardHandle {
	t.Helper()
	newSrv := func(cfg server.Config) *server.Server {
		cfg.Logf = t.Logf
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	listen := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		return ln
	}

	standbySrv := newSrv(server.Config{Standby: true})
	standbyTS := httptest.NewServer(standbySrv)
	t.Cleanup(standbyTS.Close)
	standbyBin := listen()
	go standbySrv.ServeBin(standbyBin)

	activeSrv := newSrv(server.Config{ReplicateTo: standbyTS.URL})
	activeLn := listen()
	activeWeb := &http.Server{Handler: activeSrv}
	go activeWeb.Serve(activeLn)
	t.Cleanup(func() { activeWeb.Close() })
	activeBin := listen()
	go activeSrv.ServeBin(activeBin)

	return &shardHandle{
		cfg: cluster.ShardConfig{
			Name:        name,
			Addr:        "http://" + activeLn.Addr().String(),
			BinAddr:     activeBin.Addr().String(),
			StandbyAddr: standbyTS.URL,
			StandbyBin:  standbyBin.Addr().String(),
		},
		activeSrv: activeSrv,
		activeWeb: activeWeb,
		activeBin: activeBin,
	}
}

func TestClusterKillShardFailover(t *testing.T) {
	shards := map[string]*shardHandle{}
	front := cluster.New(cluster.Config{
		ProbeInterval: 20 * time.Millisecond,
		FailAfter:     2,
		Logf:          t.Logf,
	})
	for _, name := range []string{"shard-a", "shard-b", "shard-c"} {
		h := startShard(t, name)
		shards[h.cfg.Addr] = h
		if err := front.AddShard(h.cfg); err != nil {
			t.Fatal(err)
		}
	}
	front.Start()
	t.Cleanup(front.Close)
	frontTS := httptest.NewServer(front)
	t.Cleanup(frontTS.Close)
	frontBin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { frontBin.Close() })
	go front.ServeBin(frontBin)

	c := client.New(frontTS.URL)
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("e2e-%02d", i)
		if _, err := c.CreateSession(wire.CreateSessionRequest{Name: names[i], Catalog: "fig3"}); err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
	}

	// The victim is whichever shard owns the first session; the ring
	// must have spread the rest across more than one shard.
	victimAddr, ok := front.Route(names[0])
	if !ok {
		t.Fatal("no route for session")
	}
	victim := shards[victimAddr]
	owners := map[string]bool{}
	for _, n := range names {
		addr, _ := front.Route(n)
		owners[addr] = true
	}
	if len(owners) < 2 {
		t.Fatalf("ring placed all %d sessions on one shard", len(names))
	}

	// Churn: one worker per session streams distinct inserts through the
	// front, counting only acknowledged writes. The retry loop carries a
	// req_id, so an ack lost to the crash must surface as a replay, not
	// a second apply.
	acked := make([]int, len(names))
	replays := make([]int, len(names))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				u := []*controlplane.Update{e2eInsert(uint64(i)<<20 | uint64(seq))}
				resp, _, err := c.WriteRetry(name, wire.ModeSingle, u, 80, 5*time.Millisecond)
				if err != nil {
					t.Errorf("write %s/%d lost: %v", name, seq, err)
					return
				}
				acked[i]++
				if resp.Replayed {
					replays[i]++
				}
			}
		}(i, name)
	}

	time.Sleep(150 * time.Millisecond)
	victim.kill()

	// The prober must declare the shard dead and promote its standby.
	deadline := time.Now().Add(5 * time.Second)
	for {
		addr, _ := front.Route(names[0])
		if addr == victim.cfg.StandbyAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("front never failed the victim over")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // churn on the promoted standby
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Exactly-once, zero lost: every session's engine saw each
	// acknowledged write exactly once, and the audit log is continuous
	// (one record per write, no reset across the failover).
	table := "Ingress.eth_table"
	for i, name := range names {
		info, err := c.Session(name)
		if err != nil {
			t.Fatalf("session %s after failover: %v", name, err)
		}
		if info.Stats.Updates != acked[i] {
			t.Errorf("%s: %d updates applied, %d acknowledged", name, info.Stats.Updates, acked[i])
		}
		if info.Entries[table] != acked[i] {
			t.Errorf("%s: %d live entries, want %d (duplicate or lost apply)", name, info.Entries[table], acked[i])
		}
		if info.AuditTotal != int64(acked[i]) {
			t.Errorf("%s: audit seq %d, want %d (continuity broken)", name, info.AuditTotal, acked[i])
		}
	}
	totalReplays := 0
	for _, r := range replays {
		totalReplays += r
	}
	t.Logf("churn: %v acked per session, %d replays absorbed", acked, totalReplays)

	// The session list fan-out still sees the whole fleet.
	sessions, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != len(names) {
		t.Fatalf("fan-out listed %d sessions, want %d", len(sessions), len(names))
	}

	// Front health and aggregated metrics reflect the failover.
	var fh wire.HealthResponse
	if err := getJSON(frontTS.URL+"/healthz", &fh); err != nil {
		t.Fatal(err)
	}
	sawFailover := false
	for _, sh := range fh.Shards {
		if sh.Name == victim.cfg.Name {
			sawFailover = sh.FailedOver && sh.Addr == victim.cfg.StandbyAddr
		}
	}
	if !sawFailover {
		t.Fatalf("health does not record the failover: %+v", fh.Shards)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["front.failovers"] != 1 {
		t.Errorf("front.failovers = %d, want 1", snap.Counters["front.failovers"])
	}
	if snap.Counters["server.ship_rounds"] == 0 {
		t.Error("aggregate metrics carry no shard counters")
	}

	// The binary protocol routes through the front onto the promoted
	// standby: attach to the victim's session and write.
	b, err := client.DialBin(frontBin.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Attach(names[0], "", false); err != nil {
		t.Fatalf("binary attach through front: %v", err)
	}
	if _, err := b.Write([]*controlplane.Update{e2eInsert(0xfff000)}, false); err != nil {
		t.Fatalf("binary write through front: %v", err)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := acked[0] + 1; st.Updates != want {
		t.Fatalf("binary stats after failover: %d updates, want %d", st.Updates, want)
	}
}

func e2eInsert(val uint64) *controlplane.Update {
	return &controlplane.Update{
		Kind:  controlplane.InsertEntry,
		Table: "Ingress.eth_table",
		Entry: &controlplane.TableEntry{
			Action: "drop",
			Matches: []controlplane.FieldMatch{
				{Kind: controlplane.MatchTernary, Value: sym.NewBV(48, val), Mask: sym.NewBV(48, 0xffffffffffff)},
			},
		},
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
