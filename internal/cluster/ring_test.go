package cluster

import (
	"fmt"
	"testing"
)

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := []string{"shard-a", "shard-b", "shard-c", "shard-d"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 4000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("session-%d", i))]++
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
	// With 128 vnodes the split should be within a loose 2x band of even.
	want := keys / len(members)
	for m, n := range counts {
		if n < want/2 || n > want*2 {
			t.Errorf("member %s owns %d keys, want within [%d,%d]", m, n, want/2, want*2)
		}
	}
}

func TestRingStabilityOnMembershipChange(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"shard-a", "shard-b", "shard-c", "shard-d"} {
		r.Add(m)
	}
	const keys = 4000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("session-%d", i))
	}
	r.Remove("shard-b")
	moved, fromB := 0, 0
	for i := range before {
		now := r.Lookup(fmt.Sprintf("session-%d", i))
		if now == "shard-b" {
			t.Fatalf("key still maps to removed member")
		}
		if now != before[i] {
			moved++
			if before[i] == "shard-b" {
				fromB++
			}
		}
	}
	// Consistent hashing's contract: only the removed member's keys move.
	if moved != fromB {
		t.Fatalf("%d keys moved but only %d belonged to the removed member", moved, fromB)
	}
	// Re-adding restores the original placement exactly.
	r.Add("shard-b")
	for i := range before {
		if now := r.Lookup(fmt.Sprintf("session-%d", i)); now != before[i] {
			t.Fatalf("key %d moved from %s to %s after re-add", i, before[i], now)
		}
	}
}

func TestRingDeterministicAndEmpty(t *testing.T) {
	if got := NewRing(8).Lookup("x"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	a, b := NewRing(16), NewRing(16)
	for _, m := range []string{"s1", "s2", "s3"} {
		a.Add(m)
		b.Add(m)
	}
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings disagree on %s", k)
		}
	}
	a.Add("s2") // idempotent
	if got := len(a.Members()); got != 3 {
		t.Fatalf("duplicate add changed membership: %d members", got)
	}
}
