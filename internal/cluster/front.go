package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// ShardConfig describes one shard: a stable name (its ring identity),
// the active flayd's addresses, and optionally a standby flayd the
// active replicates to (see server.Config.ReplicateTo). When the front
// declares the active dead it promotes the standby and swaps the
// addresses; the name — and so the session placement — never changes.
type ShardConfig struct {
	Name    string
	Addr    string // active HTTP base URL, e.g. http://127.0.0.1:7001
	BinAddr string // active binary listener, e.g. 127.0.0.1:7101 ("" = none)
	// Standby addresses ("" = no failover for this shard).
	StandbyAddr string
	StandbyBin  string
}

// shard is the mutable runtime state behind a ring member.
type shard struct {
	name string

	mu          sync.RWMutex
	addr        string
	binAddr     string
	standbyAddr string
	standbyBin  string
	failedOver  bool
	misses      int // consecutive probe failures
}

func (sh *shard) current() (addr, binAddr string) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.addr, sh.binAddr
}

func (sh *shard) healthy() bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.misses == 0
}

// Config tunes the front door.
type Config struct {
	// Vnodes per ring member (default DefaultVnodes).
	Vnodes int
	// ProbeInterval is the health-probe cadence; 0 disables the prober
	// (failover then only happens via Failover).
	ProbeInterval time.Duration
	// FailAfter is how many consecutive probe failures declare a shard
	// dead (default 3).
	FailAfter int
	// MaxConns bounds idle proxy connections per shard (default 64).
	MaxConns int
	// Metrics receives the front's own counters; one is created if nil.
	Metrics *obs.Registry
	// Logf receives operational log lines (default: drop them).
	Logf func(format string, args ...any)
}

// Front is the fleet's single entry point: an http.Handler proxying the
// HTTP/JSON API onto the owning shard (plus fleet-wide fan-out for
// listing and metrics), and a binary-protocol proxy that routes each
// connection's Attach and then splices bytes.
type Front struct {
	cfg  Config
	met  *obs.Registry
	logf func(format string, args ...any)
	ring *Ring

	// hc is the pooled transport shared by proxying, probes, fan-out
	// and promotes.
	hc *http.Client

	mu      sync.RWMutex
	shards  map[string]*shard
	proxies map[string]*httputil.ReverseProxy // by base URL

	mux  *http.ServeMux
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a front with no shards; add them with AddShard, then
// Start the prober (optional) and serve.
func New(cfg Config) *Front {
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Front{
		cfg:  cfg,
		met:  cfg.Metrics,
		logf: cfg.Logf,
		ring: NewRing(cfg.Vnodes),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxConns * 4,
			MaxIdleConnsPerHost: cfg.MaxConns,
			IdleConnTimeout:     90 * time.Second,
		}},
		shards:  make(map[string]*shard),
		proxies: make(map[string]*httputil.ReverseProxy),
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
	}
	f.routes()
	return f
}

// Start launches the health prober (no-op when ProbeInterval is 0).
func (f *Front) Start() {
	if f.cfg.ProbeInterval <= 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				f.probeAll()
			case <-f.stop:
				return
			}
		}
	}()
}

// Close stops the prober.
func (f *Front) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.wg.Wait()
}

// AddShard registers a shard and claims its ring range. Sessions hash
// onto the updated ring immediately — membership changes re-route new
// traffic; existing sessions stay where their shard's state lives.
func (f *Front) AddShard(sc ShardConfig) error {
	if sc.Name == "" || sc.Addr == "" {
		return fmt.Errorf("cluster: shard needs a name and an address")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.shards[sc.Name]; ok {
		return fmt.Errorf("cluster: shard %q exists", sc.Name)
	}
	f.shards[sc.Name] = &shard{
		name:        sc.Name,
		addr:        sc.Addr,
		binAddr:     sc.BinAddr,
		standbyAddr: sc.StandbyAddr,
		standbyBin:  sc.StandbyBin,
	}
	f.ring.Add(sc.Name)
	f.met.Gauge("front.shards").Set(int64(len(f.shards)))
	return nil
}

// RemoveShard drops a shard from the ring; its sessions re-route to the
// surviving members on the next request.
func (f *Front) RemoveShard(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.shards[name]; !ok {
		return
	}
	delete(f.shards, name)
	f.ring.Remove(name)
	f.met.Gauge("front.shards").Set(int64(len(f.shards)))
}

// shardFor resolves the shard owning a session name.
func (f *Front) shardFor(session string) (*shard, bool) {
	member := f.ring.Lookup(session)
	if member == "" {
		return nil, false
	}
	f.mu.RLock()
	sh, ok := f.shards[member]
	f.mu.RUnlock()
	return sh, ok
}

// Route reports the HTTP base URL currently serving a session (tests,
// diagnostics).
func (f *Front) Route(session string) (string, bool) {
	sh, ok := f.shardFor(session)
	if !ok {
		return "", false
	}
	addr, _ := sh.current()
	return addr, true
}

// allShards snapshots the shard set sorted by name.
func (f *Front) allShards() []*shard {
	f.mu.RLock()
	out := make([]*shard, 0, len(f.shards))
	for _, sh := range f.shards {
		out = append(out, sh)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Failover promotes the shard's standby and swaps the addresses behind
// its ring identity. Idempotent per standby: a shard that already
// failed over (or has no standby) is an error.
func (f *Front) Failover(name string) error {
	f.mu.RLock()
	sh, ok := f.shards[name]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: no shard %q", name)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.standbyAddr == "" {
		return fmt.Errorf("cluster: shard %q has no standby to promote", name)
	}
	resp, err := f.hc.Post(sh.standbyAddr+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		return fmt.Errorf("cluster: promoting standby of %q: %w", name, err)
	}
	defer resp.Body.Close()
	var pr wire.ReplicaPromoteResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pr); err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: promoting standby of %q: HTTP %d (%v)", name, resp.StatusCode, err)
	}
	f.logf("cluster: shard %s failed over to %s (%d sessions live)", name, sh.standbyAddr, len(pr.Sessions))
	sh.addr, sh.binAddr = sh.standbyAddr, sh.standbyBin
	sh.standbyAddr, sh.standbyBin = "", ""
	sh.failedOver = true
	sh.misses = 0
	f.met.Counter("front.failovers").Inc()
	return nil
}

// probeAll health-checks every shard and fails the dead ones over.
func (f *Front) probeAll() {
	for _, sh := range f.allShards() {
		addr, _ := sh.current()
		ok := f.probe(addr)
		sh.mu.Lock()
		if ok {
			sh.misses = 0
			sh.mu.Unlock()
			continue
		}
		sh.misses++
		misses, standby := sh.misses, sh.standbyAddr
		sh.mu.Unlock()
		f.met.Counter("front.probe_failures").Inc()
		if misses >= f.cfg.FailAfter && standby != "" {
			if err := f.Failover(sh.name); err != nil {
				f.logf("cluster: %v", err)
			}
		}
	}
}

func (f *Front) probe(base string) bool {
	ctx, cancel := contextWithTimeout(f.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode == http.StatusOK
}
