// The front door's binary-protocol surface. The protocol is
// session-scoped — the first frame on every connection is Attach — so
// the front only has to speak binproto for one frame: it reads the
// Attach, hashes the session name onto the ring, dials the owning
// shard's binary listener, replays the handshake and the Attach frame,
// and then splices bytes in both directions. Pipelining, batching and
// flush behaviour stay end-to-end between client and shard; the front
// adds one hop, not one parse.
package cluster

import (
	"bufio"
	"errors"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// binDialTimeout bounds the upstream dial when splicing a connection.
const binDialTimeout = 5 * time.Second

// ServeBin accepts binary-protocol connections on ln and splices each
// onto the shard owning its session. It blocks until ln closes.
func (f *Front) ServeBin(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go f.spliceBinConn(conn)
	}
}

func (f *Front) spliceBinConn(conn net.Conn) {
	defer conn.Close()
	// Client speaks first; answer before reading the Attach so pipelined
	// clients are not stalled.
	if err := binproto.ReadHandshake(conn); err != nil {
		f.met.Counter("front.bin_errors").Inc()
		return
	}
	if err := binproto.WriteHandshake(conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 32<<10)
	fr, err := binproto.ReadFrame(br)
	if err != nil {
		f.binRefuse(conn, 0, http.StatusBadRequest, "", "reading attach: "+err.Error())
		return
	}
	if fr.Type != binproto.TAttach {
		f.binRefuse(conn, fr.Corr, http.StatusBadRequest, "", "first frame must be attach")
		return
	}
	att, err := binproto.DecodeAttach(fr.Payload)
	if err != nil {
		f.binRefuse(conn, fr.Corr, http.StatusBadRequest, "", err.Error())
		return
	}
	sh, ok := f.shardFor(att.Name)
	if !ok {
		f.binRefuse(conn, fr.Corr, http.StatusServiceUnavailable, wire.CodeStandby, "no shards registered")
		return
	}
	_, binAddr := sh.current()
	if binAddr == "" {
		f.binRefuse(conn, fr.Corr, http.StatusServiceUnavailable, wire.CodeStandby, "shard "+sh.name+" has no binary listener")
		return
	}
	up, err := net.DialTimeout("tcp", binAddr, binDialTimeout)
	if err != nil {
		f.met.Counter("front.proxy_errors").Inc()
		f.binRefuse(conn, fr.Corr, http.StatusBadGateway, "", "shard unreachable: "+err.Error())
		return
	}
	defer up.Close()
	if err := binproto.WriteHandshake(up); err != nil {
		return
	}
	if err := binproto.ReadHandshake(up); err != nil {
		f.binRefuse(conn, fr.Corr, http.StatusBadGateway, "", "shard handshake: "+err.Error())
		return
	}
	if err := binproto.WriteFrame(up, fr); err != nil {
		return
	}
	f.met.Counter("front.bin_conns").Inc()
	f.logf("cluster: bin session %q spliced onto %s (%s)", att.Name, sh.name, binAddr)

	// Splice. The client-side reader goes through br so frames the
	// client pipelined behind the Attach are not lost.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(up, br)
		// Client went away (or shard write failed): unblock the other
		// copy so the connection tears down as a unit.
		up.Close()
		done <- struct{}{}
	}()
	go func() {
		io.Copy(conn, up)
		conn.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}

// binRefuse answers one TErr frame and lets the deferred close drop the
// connection — same shape the shard itself uses for a fatal frame.
func (f *Front) binRefuse(w io.Writer, corr uint64, status int, code, msg string) {
	f.met.Counter("front.bin_errors").Inc()
	payload := binproto.AppendErrMsg(nil, &binproto.ErrMsg{Status: status, Code: code, Msg: msg})
	_ = binproto.WriteFrame(w, binproto.Frame{Type: binproto.TErr, Corr: corr, Payload: payload})
}
