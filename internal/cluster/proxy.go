// The front door's HTTP surface: per-session requests proxy to the
// owning shard; fleet-level requests (session list, metrics, health)
// fan out and merge.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		d = time.Second
	}
	return context.WithTimeout(context.Background(), d)
}

func (f *Front) routes() {
	f.mux.HandleFunc("GET /healthz", f.handleHealth)
	f.mux.HandleFunc("GET /metrics", f.handleMetricsText)
	f.mux.HandleFunc("GET /v1/metrics", f.handleMetricsJSON)
	f.mux.HandleFunc("POST /v1/sessions", f.handleCreate)
	f.mux.HandleFunc("GET /v1/sessions", f.handleList)
	f.mux.HandleFunc("/v1/sessions/{name}", f.handleSession)
	f.mux.HandleFunc("/v1/sessions/{name}/{rest...}", f.handleSession)
	f.mux.HandleFunc("POST /v1/replica/promote", f.handlePromoteAll)
}

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.met.Counter("front.http_requests").Inc()
	f.mux.ServeHTTP(w, r)
}

// proxyFor returns (building if needed) the reverse proxy for a shard
// base URL. Proxies share the front's pooled transport.
func (f *Front) proxyFor(base string) (*httputil.ReverseProxy, error) {
	f.mu.RLock()
	p, ok := f.proxies[base]
	f.mu.RUnlock()
	if ok {
		return p, nil
	}
	target, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard url %q: %w", base, err)
	}
	p = httputil.NewSingleHostReverseProxy(target)
	p.Transport = f.hc.Transport
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		f.met.Counter("front.proxy_errors").Inc()
		f.errorf(w, http.StatusBadGateway, "shard unreachable: %v", err)
	}
	f.mu.Lock()
	f.proxies[base] = p
	f.mu.Unlock()
	return p, nil
}

// forward proxies the request to the shard owning the session.
func (f *Front) forward(w http.ResponseWriter, r *http.Request, session string) {
	sh, ok := f.shardFor(session)
	if !ok {
		f.errorf(w, http.StatusServiceUnavailable, "no shards registered")
		return
	}
	addr, _ := sh.current()
	p, err := f.proxyFor(addr)
	if err != nil {
		f.errorf(w, http.StatusInternalServerError, "%v", err)
		return
	}
	p.ServeHTTP(w, r)
}

// handleSession proxies every per-session endpoint by the {name} path
// segment — the consistent-hash routing step.
func (f *Front) handleSession(w http.ResponseWriter, r *http.Request) {
	f.forward(w, r, r.PathValue("name"))
}

// handleCreate peeks the create body for the session name, restores the
// body, and proxies to the owning shard.
func (f *Front) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, wire.DefaultMaxBody+1))
	if err != nil {
		f.errorf(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > wire.DefaultMaxBody {
		f.errorf(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", wire.DefaultMaxBody)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		f.errorf(w, http.StatusBadRequest, "create body carries no session name")
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	f.forward(w, r, req.Name)
}

// handleList fans out to every shard and merges the session lists.
func (f *Front) handleList(w http.ResponseWriter, r *http.Request) {
	type result struct {
		list wire.SessionList
		err  error
	}
	shards := f.allShards()
	results := make([]result, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			addr, _ := sh.current()
			results[i].err = f.getJSON(addr+"/v1/sessions", &results[i].list)
		}(i, sh)
	}
	wg.Wait()
	var merged wire.SessionList
	for i, res := range results {
		if res.err != nil {
			f.logf("cluster: listing %s: %v", shards[i].name, res.err)
			continue
		}
		merged.Sessions = append(merged.Sessions, res.list.Sessions...)
	}
	sort.Slice(merged.Sessions, func(i, j int) bool { return merged.Sessions[i].Name < merged.Sessions[j].Name })
	f.writeJSON(w, http.StatusOK, merged)
}

// handlePromoteAll is an operator hammer: promote every standby (used
// when the front is being pointed at a standby fleet wholesale).
func (f *Front) handlePromoteAll(w http.ResponseWriter, r *http.Request) {
	var out wire.ReplicaPromoteResponse
	for _, sh := range f.allShards() {
		sh.mu.RLock()
		standby := sh.standbyAddr
		sh.mu.RUnlock()
		if standby == "" {
			continue
		}
		if err := f.Failover(sh.name); err != nil {
			f.errorf(w, http.StatusBadGateway, "%v", err)
			return
		}
	}
	for _, sh := range f.allShards() {
		out.Sessions = append(out.Sessions, sh.name)
	}
	f.writeJSON(w, http.StatusOK, out)
}

// mergeSnapshot folds one shard's metrics into the aggregate: counters,
// gauges and histogram counts/sums add; histogram extrema and quantiles
// take the worst case (a fleet p99 is at least the worst shard's p99).
func mergeSnapshot(dst *obs.Snapshot, src obs.Snapshot) {
	if dst.Counters == nil {
		dst.Counters = make(map[string]int64)
	}
	if dst.Gauges == nil {
		dst.Gauges = make(map[string]int64)
	}
	if dst.Histograms == nil {
		dst.Histograms = make(map[string]obs.HistogramSnapshot)
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	for k, v := range src.Gauges {
		dst.Gauges[k] += v
	}
	for k, h := range src.Histograms {
		m, ok := dst.Histograms[k]
		if !ok {
			dst.Histograms[k] = h
			continue
		}
		m.Count += h.Count
		m.Sum += h.Sum
		if h.Min < m.Min {
			m.Min = h.Min
		}
		if h.Max > m.Max {
			m.Max = h.Max
		}
		if h.P50 > m.P50 {
			m.P50 = h.P50
		}
		if h.P95 > m.P95 {
			m.P95 = h.P95
		}
		if h.P99 > m.P99 {
			m.P99 = h.P99
		}
		dst.Histograms[k] = m
	}
}

// aggregate fans out to every shard's /v1/metrics and merges, folding
// in the front's own counters.
func (f *Front) aggregate() obs.Snapshot {
	shards := f.allShards()
	snaps := make([]obs.Snapshot, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			addr, _ := sh.current()
			errs[i] = f.getJSON(addr+"/v1/metrics", &snaps[i])
		}(i, sh)
	}
	wg.Wait()
	var out obs.Snapshot
	mergeSnapshot(&out, f.met.Snapshot())
	for i, snap := range snaps {
		if errs[i] != nil {
			f.logf("cluster: scraping %s: %v", shards[i].name, errs[i])
			continue
		}
		mergeSnapshot(&out, snap)
	}
	return out
}

func (f *Front) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	f.writeJSON(w, http.StatusOK, f.aggregate())
}

func (f *Front) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := f.aggregate()
	if err := snap.WriteProm(w, "flay"); err != nil {
		f.logf("cluster: writing /metrics: %v", err)
	}
}

// handleHealth answers /healthz with the standard wire.HealthResponse
// shape plus a per-shard detail row, so a plain client's readiness
// probe works unchanged against a front.
func (f *Front) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := wire.HealthResponse{Status: "ok", Version: wire.Version}
	for _, sh := range f.allShards() {
		sh.mu.RLock()
		row := wire.ShardHealth{
			Name:       sh.name,
			Addr:       sh.addr,
			Healthy:    sh.misses == 0,
			FailedOver: sh.failedOver,
			HasStandby: sh.standbyAddr != "",
		}
		sh.mu.RUnlock()
		if !row.Healthy {
			out.Status = "degraded"
		}
		out.Shards = append(out.Shards, row)
	}
	f.writeJSON(w, http.StatusOK, out)
}

func (f *Front) getJSON(u string, v any) error {
	resp, err := f.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, wire.DefaultMaxBody)).Decode(v)
}

func (f *Front) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	f.met.Counter("front.http_errors").Inc()
	f.writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (f *Front) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
