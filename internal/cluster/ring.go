// Package cluster is the flayd fleet layer: a consistent-hash ring
// mapping session names onto shards, and a front door (Front) that
// proxies both the HTTP/JSON and the binary protocol onto the owning
// shard, aggregates fleet metrics, and fails a dead shard over to its
// snapshot-shipped standby.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is
// projected onto vnodes points of a 64-bit circle; a key is owned by
// the first point at or after its hash. With enough vnodes (the default
// 128) key ownership is near-uniform, and adding or removing one member
// moves only ~1/N of the keyspace.
//
// Members are stable shard identities, not addresses: a failover swaps
// the address behind a member and leaves the ring — and therefore every
// session's placement — untouched.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []point // sorted by hash
	members map[string]struct{}
}

type point struct {
	hash   uint64
	member string
}

// DefaultVnodes is the per-member virtual node count.
const DefaultVnodes = 128

// NewRing builds an empty ring (vnodes <= 0 uses DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// fnv-1a mixes trailing bytes weakly, and both session names and
	// vnode labels share long prefixes, which clusters raw hashes into
	// narrow bands of the circle. A splitmix64 finalizer avalanches the
	// state so near-identical strings land far apart.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", member, i)), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (idempotent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].member
}
