package goflay_test

import (
	"strings"
	"sync"
	"testing"

	goflay "repro"
	"repro/internal/progs"
)

func TestPipelineEndToEnd(t *testing.T) {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source)
	if err != nil {
		t.Fatal(err)
	}
	if tables := pipe.Tables(); len(tables) != 1 || tables[0] != "Ingress.eth_table" {
		t.Fatalf("tables = %v", tables)
	}
	// Empty config: the table vanishes from the specialized program.
	if strings.Contains(pipe.SpecializedSource(), "eth_table") {
		t.Fatal("empty table should be specialized away")
	}
	d := pipe.Apply(&goflay.Update{
		Kind:  goflay.InsertEntry,
		Table: "Ingress.eth_table",
		Entry: &goflay.TableEntry{
			Matches: []goflay.FieldMatch{{
				Kind:  goflay.MatchTernary,
				Value: goflay.NewBV(48, 0x2),
				Mask:  goflay.NewBV2(48, 0, 0xFFFFFFFFFFFF),
			}},
			Action: "set",
			Params: []goflay.BV{goflay.NewBV(16, 0x900)},
		},
	})
	if d.Kind != goflay.Recompile {
		t.Fatalf("decision = %v", d)
	}
	if pipe.Entries("Ingress.eth_table") != 1 {
		t.Fatal("entry not installed")
	}
	rep, err := pipe.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages < 1 || !rep.Feasible {
		t.Fatalf("compile report: %s", rep)
	}
	full, err := pipe.CompileOriginal()
	if err != nil {
		t.Fatal(err)
	}
	if full.Tables < rep.Tables {
		t.Fatalf("original should have at least as many tables: %d vs %d", full.Tables, rep.Tables)
	}
	stats := pipe.Statistics()
	if stats.Updates != 1 || stats.Recompilations != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := goflay.Open("bad", "control C {"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := goflay.Open("bad", `
struct metadata { flub x; }
control C(inout metadata meta, inout standard_metadata_t std) { apply { } }
`); err == nil {
		t.Fatal("expected type error")
	}
}

func TestApplyAllAndRejection(t *testing.T) {
	p := progs.Fig5()
	pipe, err := goflay.Open(p.Name, p.Source)
	if err != nil {
		t.Fatal(err)
	}
	good := progs.Fig5Entry()
	bad := &goflay.Update{Kind: goflay.InsertEntry, Table: "Ingress.ghost"}
	ds := pipe.ApplyAll([]*goflay.Update{good, bad})
	if ds[0].Kind == goflay.Rejected || ds[1].Kind != goflay.Rejected {
		t.Fatalf("decisions: %v, %v", ds[0], ds[1])
	}
	if !strings.Contains(pipe.OriginalSource(), "port_table") {
		t.Fatal("original source must keep the table")
	}
}

// TestPipelineConcurrentUse drives one Pipeline from several
// goroutines at once — an updater streaming batches while monitors
// read statistics and render the specialized program — the deployment
// shape the RWMutex-guarded engine exists for. Run under -race.
func TestPipelineConcurrentUse(t *testing.T) {
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source, goflay.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	entry := func(i int) *goflay.Update {
		return &goflay.Update{
			Kind:  goflay.InsertEntry,
			Table: "Ingress.eth_table",
			Entry: &goflay.TableEntry{
				Matches: []goflay.FieldMatch{{
					Kind:  goflay.MatchTernary,
					Value: goflay.NewBV(48, uint64(0x100+i)),
					Mask:  goflay.NewBV2(48, 0, 0xFFFFFFFFFFFF),
				}},
				Action: "set",
				Params: []goflay.BV{goflay.NewBV(16, uint64(i))},
			},
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := pipe.Statistics()
				if st.Forwarded+st.Recompilations+st.Rejected != st.Updates {
					t.Errorf("torn stats read: %+v", st)
					return
				}
				pipe.SpecializedSource()
			}
		}()
	}
	const batches, perBatch = 10, 8
	for b := 0; b < batches; b++ {
		var batch []*goflay.Update
		for i := 0; i < perBatch; i++ {
			batch = append(batch, entry(b*perBatch+i))
		}
		for _, d := range pipe.ApplyBatch(batch) {
			if d.Kind == goflay.Rejected {
				t.Errorf("unexpected rejection: %s", d)
			}
		}
	}
	close(stop)
	wg.Wait()
	st := pipe.Statistics()
	if st.Updates != batches*perBatch || st.Batches != batches {
		t.Fatalf("stats after concurrent run: %+v", st)
	}
}

func TestDeviceProfile(t *testing.T) {
	dev := goflay.Device()
	if dev.Stages != 20 || dev.PHVBits == 0 {
		t.Fatalf("unexpected device profile %+v", dev)
	}
}
