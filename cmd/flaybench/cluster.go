package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/server"
	"repro/internal/sym"
	"repro/internal/wire"
)

// clusterReport is the binary-vs-HTTP protocol comparison: the same
// batched update workload driven into one in-process flayd over both
// surfaces. The binary protocol's pitch is per-update overhead — no
// HTTP framing, no JSON, pipelined batches instead of request/response
// round trips — so its batched update throughput is gated at >= 2x the
// HTTP/JSON surface on the same workload.
type clusterReport struct {
	Updates      int     `json:"updates"`
	Batch        int     `json:"batch"`
	Workers      int     `json:"workers"`
	HTTPUpdatesS float64 `json:"http_updates_per_sec"`
	BinUpdatesS  float64 `json:"bin_updates_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// clusterUpdate builds the i-th update of a churn-shaped workload:
// each batch inserts distinct eth_table entries and then deletes them
// again, so chunks are order-independent across concurrent loops (no
// rejects) and the table stays small — the steady-state regime where
// per-update protocol overhead, the thing this section compares, is
// the dominant cost rather than a growing analysis.
func clusterUpdate(i int, del bool) *controlplane.Update {
	kind := controlplane.InsertEntry
	if del {
		kind = controlplane.DeleteEntry
	}
	return &controlplane.Update{
		Kind: kind, Table: "Ingress.eth_table",
		Entry: &controlplane.TableEntry{
			Matches: []controlplane.FieldMatch{{
				Kind:  controlplane.MatchTernary,
				Value: sym.NewBV(48, uint64(0x020000000000+i)),
				Mask:  sym.NewBV(48, 0xffffffffffff),
			}},
			Action: "drop",
		},
	}
}

func clusterSection(full bool) {
	header("Cluster: binary protocol vs HTTP/JSON update throughput")
	const batch, workers = 8, 8
	n := 4096
	if full {
		n = 16384
	}

	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	web := &http.Server{Handler: srv}
	go web.Serve(httpLn)
	defer web.Close()
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer binLn.Close()
	go srv.ServeBin(binLn)

	chunks := func() [][]*controlplane.Update {
		var out [][]*controlplane.Update
		id := 0
		for total := 0; total < n; total += batch {
			b := make([]*controlplane.Update, 0, batch)
			for k := 0; k < batch/2; k++ {
				b = append(b, clusterUpdate(id+k, false))
			}
			for k := 0; k < batch/2; k++ {
				b = append(b, clusterUpdate(id+k, true))
			}
			id += batch / 2
			out = append(out, b)
		}
		return out
	}

	// HTTP/JSON arm: a pooled client, `workers` closed loops, one
	// batched POST per chunk.
	hc := client.NewPooled("http://"+httpLn.Addr().String(), workers)
	if _, err := hc.CreateSession(wire.CreateSessionRequest{Name: "wire-http", Catalog: "fig3"}); err != nil {
		log.Fatal(err)
	}
	httpElapsed := clusterDrive(chunks(), workers, func(b []*controlplane.Update) error {
		resp, err := hc.Write("wire-http", wire.ModeBatch, b)
		if err == nil && len(resp.Decisions) != len(b) {
			err = fmt.Errorf("%d decisions for %d updates", len(resp.Decisions), len(b))
		}
		return err
	})

	// Binary arm: the same chunks pipelined over one connection shared
	// by the same number of loops.
	bc, err := client.DialBin(binLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	if _, err := bc.Attach("wire-bin", "fig3", false); err != nil {
		log.Fatal(err)
	}
	binElapsed := clusterDrive(chunks(), workers, func(b []*controlplane.Update) error {
		resp, err := bc.Write(b, true)
		if err == nil && len(resp.Decisions) != len(b) {
			err = fmt.Errorf("%d decisions for %d updates", len(resp.Decisions), len(b))
		}
		return err
	})

	// Both arms must have applied the whole workload, exactly.
	for _, name := range []string{"wire-http", "wire-bin"} {
		st, err := hc.Stats(name)
		if err != nil {
			log.Fatal(err)
		}
		if st.Updates != n || st.Rejected != 0 {
			fmt.Printf("FAIL: session %s applied %d/%d updates (%d rejected)\n", name, st.Updates, n, st.Rejected)
			os.Exit(1)
		}
	}

	cr := &clusterReport{
		Updates:      n,
		Batch:        batch,
		Workers:      workers,
		HTTPUpdatesS: float64(n) / httpElapsed.Seconds(),
		BinUpdatesS:  float64(n) / binElapsed.Seconds(),
	}
	cr.Speedup = cr.BinUpdatesS / cr.HTTPUpdatesS
	rep.Cluster = cr
	fmt.Printf("%d updates in %d-update batches over %d loops\n", n, batch, workers)
	fmt.Printf("  HTTP/JSON  %9.0f updates/s (%v)\n", cr.HTTPUpdatesS, httpElapsed.Round(time.Millisecond))
	fmt.Printf("  binary     %9.0f updates/s (%v)\n", cr.BinUpdatesS, binElapsed.Round(time.Millisecond))
	fmt.Printf("  speedup    %.2fx (gate: >= 2x)\n", cr.Speedup)
	if cr.Speedup < 2.0 {
		fmt.Printf("FAIL: binary protocol speedup %.2fx under the 2x gate\n", cr.Speedup)
		os.Exit(1)
	}
}

// clusterDrive runs the chunks through `write` from `workers`
// concurrent loops and returns the wall-clock elapsed.
func clusterDrive(chunks [][]*controlplane.Update, workers int, write func([]*controlplane.Update) error) time.Duration {
	next := make(chan []*controlplane.Update, len(chunks))
	for _, b := range chunks {
		next <- b
	}
	close(next)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				if err := write(b); err != nil {
					log.Fatalf("cluster write: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(t0)
}
