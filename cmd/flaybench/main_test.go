package main

import (
	"os"
	"regexp"
	"slices"
	"strings"
	"testing"
)

// TestSelectSections pins the -only contract: empty selects all,
// unknown names and empty selections are errors (not silent no-ops),
// whitespace and stray commas are tolerated.
func TestSelectSections(t *testing.T) {
	known := sectionNames()

	if want, err := selectSections("", known); err != nil || want != nil {
		t.Fatalf("empty -only: want=%v err=%v, want nil/nil (all sections)", want, err)
	}

	want, err := selectSections("burst, churn", known)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 || !want["burst"] || !want["churn"] {
		t.Fatalf("selection = %v, want {burst, churn}", want)
	}

	if _, err := selectSections("bursty", known); err == nil {
		t.Fatal("unknown section must be an error")
	} else if !strings.Contains(err.Error(), "bursty") {
		t.Fatalf("error %q does not name the bad section", err)
	}

	if _, err := selectSections("burst,nope", known); err == nil {
		t.Fatal("one unknown name in a valid list must still be an error")
	}

	if _, err := selectSections(" , ,", known); err == nil {
		t.Fatal("a selection of only separators must be an error")
	}

	if w, err := selectSections("churn,", known); err != nil || len(w) != 1 {
		t.Fatalf("trailing comma: want={churn} err=%v", err)
	}
}

// TestSectionRegistry: every documented section is registered, exactly
// once, and the churn section (the bench-json artifact the soak recipe
// references) is present.
func TestSectionRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range benchSections {
		if seen[s.name] {
			t.Fatalf("section %q registered twice", s.name)
		}
		if s.run == nil {
			t.Fatalf("section %q has no run function", s.name)
		}
		seen[s.name] = true
	}
	for _, required := range []string{"table1", "table2", "table3", "burst", "batch", "cache", "dd", "precision", "churn", "ablation", "scaling", "pps"} {
		if !seen[required] {
			t.Fatalf("section %q missing from registry", required)
		}
	}
}

// TestSectionDocMatchesRegistry pins the package doc comment's
// "Sections:" list to the section registry, name for name and in run
// order, so the usage text can never drift from the implemented
// sections again (it had: the doc listed a stale order with later
// additions missing).
func TestSectionDocMatchesRegistry(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?s)// Sections: (.*?)\. The list`).FindSubmatch(src)
	if m == nil {
		t.Fatal(`doc comment lost its "Sections: ..." sentence`)
	}
	raw := strings.NewReplacer("\n// ", " ", "\n//", " ").Replace(string(m[1]))
	var listed []string
	for _, name := range strings.Split(raw, ",") {
		listed = append(listed, strings.TrimSpace(name))
	}
	if want := sectionNames(); !slices.Equal(listed, want) {
		t.Fatalf("doc comment lists sections\n  %v\nregistry implements\n  %v", listed, want)
	}
}
