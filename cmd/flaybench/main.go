// flaybench regenerates every table and figure from the paper's
// evaluation: Table 1 (from-scratch compile times), Table 2 (analysis
// and update times per program), Table 3 (update scaling, precise vs
// overapproximate), Fig. 1 (input change rates), Fig. 3 (table
// implementation evolution), Fig. 5 (constant-propagation expressions),
// and the §4.2 SCION stage-savings and burst experiments.
//
// Usage:
//
//	flaybench [-only sections] [-full] [-json] [-o FILE] [-gomaxprocs LIST]
//
// Sections: table1, fig1, fig3, fig5, table2, table3, stages, burst,
// batch, cache, dd, precision, churn, ablation, scaling, pps,
// cluster. The list is
// generated from the section registry (benchSections) and pinned equal
// to it by TestSectionDocMatchesRegistry; -only takes a comma-separated
// subset ("-only burst,batch"). -full extends Table 3 to 10000
// installed entries (slow in precise mode, as in the paper).
// -json additionally writes a machine-readable report (default
// BENCH_flay.json, override with -o; "-" writes to stdout): per-section
// wall times and GOMAXPROCS plus, for the burst section, the engine's
// metrics snapshot, per-update latency quantiles and the audit trail's
// decision tally — each cross-checked exactly against the engine's own
// Statistics. -gomaxprocs "1,4,8,16" re-runs the selected sections at
// each value, merged into the one report (make bench-scaling). The
// scaling section emits the reads-vs-writes multicore curve and fails
// unless wait-free read throughput at GOMAXPROCS=8 beats the seed
// configuration (locked reads, GOMAXPROCS=1) by at least 3x. Any
// verification failure exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"math/rand"

	goflay "repro"
	"repro/internal/bmv2"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/dpexec"
	"repro/internal/devcompiler"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/progs"
	"repro/internal/sym"
	"repro/internal/trace"
)

// benchReport is the -json artifact (BENCH_flay.json).
type benchReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Sections   []sectionReport  `json:"sections"`
	Burst      *burstReport     `json:"burst,omitempty"`
	Cache      *cacheReport     `json:"cache,omitempty"`
	DD         *ddReport        `json:"dd,omitempty"`
	Precision  *precisionReport `json:"precision,omitempty"`
	Churn      *churnReport     `json:"churn,omitempty"`
	Scaling    *scalingReport   `json:"scaling,omitempty"`
	PPS        *ppsReport       `json:"pps,omitempty"`
	Cluster    *clusterReport   `json:"cluster,omitempty"`
}

type sectionReport struct {
	Name string `json:"name"`
	// GOMAXPROCS the section ran at (the -gomaxprocs sweep runs the
	// selected sections once per value, all merged into this one report).
	GOMAXPROCS int   `json:"gomaxprocs"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// burstReport is the observability cross-check: the latency quantiles
// come from the core.update_ns histogram, the decision tally from the
// audit trail, and both must agree exactly with Stats.
type burstReport struct {
	Updates        int            `json:"updates"`
	Forwarded      int            `json:"forwarded"`
	Recompilations int            `json:"recompilations"`
	Rejected       int            `json:"rejected"`
	Decisions      map[string]int `json:"audit_decisions"`
	UpdateP50NS    int64          `json:"update_p50_ns"`
	UpdateP95NS    int64          `json:"update_p95_ns"`
	UpdateP99NS    int64          `json:"update_p99_ns"`
	HistCount      int64          `json:"update_hist_count"`
	Metrics        obs.Snapshot   `json:"metrics"`
}

// cacheReport records the taint-keyed query cache's effect on the
// burst workload, plus the snapshot warm-restart comparison. The hit
// rate and the byte-identical end state are verified before the report
// is emitted; a failure exits non-zero.
type cacheReport struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	HitRate       float64 `json:"hit_rate"`
	NoCacheMS     int64   `json:"nocache_ms"`
	CacheMS       int64   `json:"cache_ms"`
	Speedup       float64 `json:"speedup"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	RestoreMS     float64 `json:"restore_ms"`
	FreshMS       float64 `json:"fresh_ms"`
}

// ddReport records the decision-diagram query core's effect on the
// precise query pass: the same burst replayed with the diagram path on
// and off (cache off on both arms, so every verdict really runs a
// query), with the verdict-for-verdict differential and the >= 3x
// query-pass gate verified before the report is emitted.
type ddReport struct {
	Updates      int     `json:"updates"`
	SolverEvalMS int64   `json:"solver_eval_ms"`
	DDEvalMS     int64   `json:"dd_eval_ms"`
	Speedup      float64 `json:"speedup"`
	DDQueries    int64   `json:"dd_queries"`
	DDFallbacks  int64   `json:"dd_fallbacks"`
	DDCompiles   int64   `json:"dd_compiles"`
	DDNodes      int     `json:"dd_nodes"`
}

// precisionReport records the adaptive-precision deadline experiment:
// a 10000-entry ACL burst driven with a per-update latency budget on a
// never-statically-overapproximating engine. The cross-checks (at least
// one degradation, p99 under the budget, zero unsound degraded
// verdicts from both the differential check and promotion) run before
// the report is emitted; a failure exits non-zero.
type precisionReport struct {
	Entries         int   `json:"entries"`
	DeadlineMS      int64 `json:"deadline_ms"`
	Degradations    int   `json:"degradations"`
	Promotions      int   `json:"promotions"`
	DegradedTables  int   `json:"degraded_tables_at_peak"`
	P50NS           int64 `json:"update_p50_ns"`
	P95NS           int64 `json:"update_p95_ns"`
	P99NS           int64 `json:"update_p99_ns"`
	MaxNS           int64 `json:"update_max_ns"`
	BaselineEntries int   `json:"baseline_entries"`
	BaselineP99NS   int64 `json:"baseline_p99_ns"`
	BaselineMaxNS   int64 `json:"baseline_max_ns"`
	DiffChecked     int   `json:"diff_checked"`
	Unsound         int   `json:"unsound"`
	AuditDegrades   int   `json:"audit_degrades"`
	AuditPromotes   int   `json:"audit_promotes"`
}

var rep = &benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}

// benchSections is the section registry, in run order. selectSections
// validates -only against it.
var benchSections = []struct {
	name string
	run  func(full bool)
}{
	{"table1", table1},
	{"fig1", fig1},
	{"fig3", fig3},
	{"fig5", fig5},
	{"table2", table2},
	{"table3", table3},
	{"stages", stages},
	{"burst", burst},
	{"batch", batchSection},
	{"cache", cacheSection},
	{"dd", ddSection},
	{"precision", precisionSection},
	{"churn", churnSection},
	{"ablation", ablation},
	{"scaling", scalingSection},
	{"pps", ppsSection},
	{"cluster", clusterSection},
}

func sectionNames() []string {
	names := make([]string, len(benchSections))
	for i, s := range benchSections {
		names[i] = s.name
	}
	return names
}

// selectSections resolves the -only flag against the known section
// names. Empty selects every section (nil map); an unknown name or a
// selection that matches nothing is an error — silently printing
// nothing would make a typo look like a clean run.
func selectSections(only string, known []string) (map[string]bool, error) {
	if only == "" {
		return nil, nil
	}
	k := make(map[string]bool, len(known))
	for _, n := range known {
		k[n] = true
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !k[name] {
			return nil, fmt.Errorf("unknown section %q (have %s)", name, strings.Join(known, "|"))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-only %q selects no sections", only)
	}
	return want, nil
}

// parseGomaxprocs resolves the -gomaxprocs flag: empty runs one pass at
// the ambient value; a comma-separated list runs the selected sections
// once per value, merged into one report.
func parseGomaxprocs(s string) ([]int, error) {
	if s == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var g int
		if _, err := fmt.Sscanf(f, "%d", &g); err != nil || g < 1 {
			return nil, fmt.Errorf("bad -gomaxprocs value %q", f)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-gomaxprocs %q selects no values", s)
	}
	return out, nil
}

func main() {
	only := flag.String("only", "", "comma-separated sections to run ("+strings.Join(sectionNames(), "|")+")")
	full := flag.Bool("full", false, "extend Table 3 to 10000 entries (slow in precise mode)")
	jsonOut := flag.Bool("json", false, "write a machine-readable report (see -o)")
	outPath := flag.String("o", "BENCH_flay.json", `report path for -json ("-" = stdout)`)
	gmp := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values to sweep (default: current)")
	flag.Parse()

	want, err := selectSections(*only, sectionNames())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sweep, err := parseGomaxprocs(*gmp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ambient := runtime.GOMAXPROCS(0)
	for _, g := range sweep {
		runtime.GOMAXPROCS(g)
		if len(sweep) > 1 {
			fmt.Printf("==== GOMAXPROCS=%d ====\n\n", g)
		}
		for _, s := range benchSections {
			if len(want) > 0 && !want[s.name] {
				continue
			}
			t0 := time.Now()
			s.run(*full)
			rep.Sections = append(rep.Sections, sectionReport{
				Name:       s.name,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				ElapsedMS:  time.Since(t0).Milliseconds(),
			})
			fmt.Println()
		}
	}
	runtime.GOMAXPROCS(ambient)
	if *jsonOut {
		if err := writeReport(*outPath); err != nil {
			log.Fatal(err)
		}
	}
}

func writeReport(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", path)
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

// ---------------------------------------------------------------------------

func table1(bool) {
	header("Table 1: from-scratch device compile times (paper vs modelled)")
	fmt.Printf("%-12s %-8s %8s %10s %12s\n", "program", "target", "paper", "model", "lowering")
	for _, name := range []string{"switch", "scion", "beaucoup", "accturbo", "dta", "middleblock", "dash"} {
		p, err := progs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := parser.Parse(p.Name, p.Source)
		if err != nil {
			log.Fatal(err)
		}
		res, err := devcompiler.New(p.Target).Compile(prog)
		if err != nil {
			log.Fatal(err)
		}
		paper := "-"
		if p.PaperCompileSeconds > 0 {
			paper = fmt.Sprintf("%.0fs", p.PaperCompileSeconds)
		}
		fmt.Printf("%-12s %-8s %8s %9.1fs %12v\n",
			p.Name, p.Target, paper, res.ModelSeconds, res.Elapsed.Round(10*time.Microsecond))
	}
	fmt.Println("\n(absolute seconds are a calibrated cost model; the shape — switch >>")
	fmt.Println("scion >> accturbo > dta > beaucoup >> bmv2 targets — is structural)")
}

// ---------------------------------------------------------------------------

func fig1(bool) {
	header("Fig. 1: rate of change of network program inputs")
	span := 24 * time.Hour
	events := trace.Generate(span, trace.Profile{})
	fmt.Printf("trace span %v, %d control-plane events\n\n", span, len(events))
	fmt.Println("  data-plane source   ~days..weeks (out of scope: recompilation via goflay)")
	for _, s := range trace.Summarize(events, span) {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("  packets             nanoseconds  (never specialized on: traffic profile)")
}

// ---------------------------------------------------------------------------

func fig3(bool) {
	header("Fig. 3: one table's implementation across five control-plane updates")
	p := progs.Fig3()
	pipe, err := goflay.Open(p.Name, p.Source)
	if err != nil {
		log.Fatal(err)
	}
	describe := func() string {
		prog := pipe.SpecializedProgram()
		cd := prog.Control("Ingress")
		tb := cd.Table("eth_table")
		switch {
		case tb == nil && strings.Contains(goflaySource(pipe), "hdr.eth.type ="):
			return "table inlined to an assignment"
		case tb == nil:
			return "table removed entirely (impl. A)"
		default:
			acts := make([]string, len(tb.Actions))
			for i, a := range tb.Actions {
				acts[i] = a.Name
			}
			return fmt.Sprintf("%s match, actions {%s}", tb.Keys[0].Match, strings.Join(acts, ", "))
		}
	}
	fmt.Printf("(1) initial, empty table:        %s\n", describe())
	labels := []string{
		"(2) insert [0x1 &&& 0x0]->set",
		"(3a) delete that entry",
		"(3b) insert [0x2 &&& full]->set",
		"(4) insert [0x5 &&& 0x8]->set",
		"(5) insert [0x6 &&& 0x7]->set",
	}
	for i, u := range progs.Fig3Updates() {
		d := pipe.Apply(u)
		fmt.Printf("%-33s decision=%-9s impl: %s\n", labels[i]+":", d.Kind, describe())
	}
}

func goflaySource(pipe *goflay.Pipeline) string { return pipe.SpecializedSource() }

// ---------------------------------------------------------------------------

func fig5(bool) {
	header("Fig. 5: the symbolic value of egress_port under three configurations")
	p := progs.Fig5()
	prog, err := parser.Parse(p.Name, p.Source)
	if err != nil {
		log.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		log.Fatal(err)
	}
	an, err := dataplane.Analyze(prog, info, dataplane.Options{})
	if err != nil {
		log.Fatal(err)
	}
	b := an.Builder
	egress := an.Final["std.egress_port"]
	fmt.Printf("block A (general data-plane model):\n  egress_port = %s\n\n", egress)

	cfg := controlplane.NewConfig(an)
	env, _, err := cfg.CompileEnv(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block B (initial configuration: empty table):\n  egress_port = %s\n\n", b.Subst(egress, env))

	if err := cfg.Apply(progs.Fig5Entry()); err != nil {
		log.Fatal(err)
	}
	env, _, err = cfg.CompileEnv(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block C (insert [0xDEADBEEFF00D] -> set(0x01)):\n  egress_port = %s\n", b.Subst(egress, env))
}

// ---------------------------------------------------------------------------

func table2(bool) {
	header("Table 2: per-program analysis and update times (paper vs measured)")
	fmt.Printf("%-12s %10s %10s | %10s %10s | %12s %12s | %12s %10s\n",
		"program", "stmts", "(paper)", "compile", "(paper)", "dp-analysis", "(paper)", "update", "(paper)")
	for _, name := range []string{"scion", "switch", "middleblock", "dash"} {
		p, err := progs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := parser.Parse(p.Name, p.Source)
		if err != nil {
			log.Fatal(err)
		}
		res, err := devcompiler.New(p.Target).Compile(prog)
		if err != nil {
			log.Fatal(err)
		}

		s, err := p.Load()
		if err != nil {
			log.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			log.Fatal(err)
		}
		// One further update, timed: the paper's "update analysis time".
		var probe *controlplane.Update
		if name == "middleblock" {
			probe = progs.MiddleblockACLEntry(1000)
		} else if name == "scion" {
			probe = progs.ScionBurstEntry(5000)
		} else {
			probe = genericProbe(s, p.BurstTable)
		}
		d := s.Apply(probe)
		if d.Kind == core.Rejected {
			log.Fatalf("%s probe rejected: %v", name, d.Err)
		}
		st := s.Statistics()
		fmt.Printf("%-12s %10d %10d | %9.1fs %10s | %12v %12s | %12v %10s\n",
			p.Name, res.Statements, p.PaperStatements,
			res.ModelSeconds, fmt.Sprintf("%.0fs", p.PaperCompileSeconds),
			st.AnalysisTime.Round(time.Millisecond), p.PaperAnalysis,
			d.Elapsed.Round(10*time.Microsecond), p.PaperUpdate)
	}
	fmt.Println("\n(dp-analysis runs once; updates touch only tainted points — and stay")
	fmt.Println("milliseconds-class regardless of program size, the paper's key claim)")
}

func genericProbe(s *core.Specializer, table string) *controlplane.Update {
	ti := s.An.Tables[table]
	e := &controlplane.TableEntry{Priority: 999999}
	for i, w := range ti.KeyWidths {
		m := controlplane.FieldMatch{Kind: ti.KeyMatch[i], Value: sym.NewBV(w, uint64(0xF0F0)%((uint64(1)<<min(w, 60))-1))}
		switch ti.KeyMatch[i] {
		case controlplane.MatchTernary:
			m.Mask = sym.AllOnes(w)
		case controlplane.MatchLPM:
			m.PrefixLen = int(w)
		}
		e.Matches = append(e.Matches, m)
	}
	for _, ai := range ti.Actions {
		if ai.Name == "NoAction" {
			continue
		}
		e.Action = ai.Name
		for _, pw := range ai.ParamWidths {
			e.Params = append(e.Params, sym.NewBV(pw, 1))
		}
		break
	}
	return &controlplane.Update{Kind: controlplane.InsertEntry, Table: table, Entry: e}
}

func min(a uint16, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------

func table3(full bool) {
	header("Table 3: update analysis time vs installed Pre-Ingress ACL entries")
	sizes := []int{1, 10, 100, 1000}
	if full {
		sizes = append(sizes, 10000)
	}
	fmt.Printf("%-10s | %-14s | %-14s | %s\n", "installed", "precise", "overapprox", "paper (precise / overapprox)")
	paper := map[int]string{
		1: "~1ms / -", 10: "~5ms / -", 100: "~100ms / ~1ms",
		1000: "~4000ms / ~1ms", 10000: "~265319ms / ~1ms",
	}
	for _, n := range sizes {
		precise := table3Measure(n, -1)
		approx := table3Measure(n, controlplane.DefaultOverapproxThreshold)
		fmt.Printf("%-10d | %-14v | %-14v | %s\n", n, precise, approx, paper[n])
	}
	if !full {
		fmt.Println("(run with -full for the 10000-entry row; precise mode is slow by design)")
	}
}

func table3Measure(n, threshold int) time.Duration {
	p := progs.Middleblock()
	s, err := p.LoadWith(core.Options{OverapproxThreshold: threshold})
	if err != nil {
		log.Fatal(err)
	}
	// Initialize the table with n entries (not timed), per the paper's
	// methodology, then time a single further update.
	batch := make([]*controlplane.Update, n)
	for i := range batch {
		batch[i] = progs.MiddleblockACLEntry(i)
	}
	if err := s.Preload(batch); err != nil {
		log.Fatal(err)
	}
	d := s.Apply(progs.MiddleblockACLEntry(n))
	if d.Kind == core.Rejected {
		log.Fatal(d.Err)
	}
	return d.Elapsed.Round(10 * time.Microsecond)
}

// ---------------------------------------------------------------------------

func stages(bool) {
	header("§4.2: SCION stage savings on the Tofino-2 model")
	p := progs.Scion()
	pipe, err := goflay.Open(p.Name, p.Source, goflay.WithTarget(goflay.TargetTofino))
	if err != nil {
		log.Fatal(err)
	}
	full, err := pipe.CompileOriginal()
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range p.Representative() {
		pipe.Apply(u)
	}
	spec, err := pipe.Compile()
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range p.IPv6Enable() {
		pipe.Apply(u)
	}
	after, err := pipe.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unspecialized:            %s\n", full)
	fmt.Printf("specialized (no IPv6):    %s\n", spec)
	fmt.Printf("after IPv6-enable batch:  %s\n", after)
	fmt.Printf("\nsavings: %d -> %d stages (%.0f%%; paper: 20%% fewer), restored to %d after IPv6\n",
		full.Stages, spec.Stages,
		100*float64(full.Stages-spec.Stages)/float64(full.Stages), after.Stages)
}

// ---------------------------------------------------------------------------

// burst runs with the full observability layer enabled — metrics
// registry and audit trail — and then proves the layer's accounting
// against the engine's own Statistics: the audit trail's decision
// tally and the update-latency histogram's population must match the
// engine counters exactly. A mismatch is a bug in the observability
// layer and exits non-zero.
func burst(bool) {
	header("§4.2: burst of 1000 fuzzer-generated IPv4 entries (SCION)")
	p := progs.Scion()
	reg := obs.NewRegistry()
	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Metrics: reg, Audit: trail})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	forwarded, recompiled := 0, 0
	for i := 0; i < 1000; i++ {
		switch s.Apply(progs.ScionBurstEntry(i)).Kind {
		case core.Forward:
			forwarded++
		case core.Recompile:
			recompiled++
		default:
			log.Fatalf("burst entry %d rejected", i)
		}
	}
	el := time.Since(t0)
	fmt.Printf("1000 updates in %v (%v/update): %d forwarded, %d recompiled\n",
		el.Round(time.Millisecond), (el / 1000).Round(time.Microsecond), forwarded, recompiled)

	st := s.Statistics()
	hist := reg.Histogram("core.update_ns").Snapshot()
	decisions := trail.CountByDecision()
	fmt.Printf("\nobservability cross-check (%d updates total incl. representative config):\n", st.Updates)
	fmt.Printf("  update latency p50=%v p95=%v p99=%v\n",
		time.Duration(hist.P50).Round(time.Microsecond),
		time.Duration(hist.P95).Round(time.Microsecond),
		time.Duration(hist.P99).Round(time.Microsecond))
	fmt.Printf("  audit trail: %d forward, %d recompile, %d rejected\n",
		decisions["forward"], decisions["recompile"], decisions["rejected"])

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "burst verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	if trail.Total() != int64(st.Updates) {
		fail("audit trail holds %d records, engine processed %d updates", trail.Total(), st.Updates)
	}
	if decisions["forward"] != st.Forwarded || decisions["recompile"] != st.Recompilations || decisions["rejected"] != st.Rejected {
		fail("audit tally %v, engine counters forwarded=%d recompiled=%d rejected=%d",
			decisions, st.Forwarded, st.Recompilations, st.Rejected)
	}
	if hist.Count != int64(st.Updates) {
		fail("latency histogram holds %d samples, engine processed %d updates", hist.Count, st.Updates)
	}
	if got := reg.Counter("core.updates").Value(); got != int64(st.Updates) {
		fail("core.updates counter %d, engine processed %d", got, st.Updates)
	}
	fmt.Println("  cross-check: metrics, histogram and audit trail agree with Statistics")

	rep.Burst = &burstReport{
		Updates:        st.Updates,
		Forwarded:      st.Forwarded,
		Recompilations: st.Recompilations,
		Rejected:       st.Rejected,
		Decisions:      decisions,
		UpdateP50NS:    hist.P50,
		UpdateP95NS:    hist.P95,
		UpdateP99NS:    hist.P99,
		HistCount:      hist.Count,
		Metrics:        reg.Snapshot(),
	}
	fmt.Println("\n(the batch is recognised as semantics-preserving; past the 100-entry")
	fmt.Println("threshold the table is overapproximated and updates become ~constant-time)")
}

// ---------------------------------------------------------------------------

// batchSection compares the sequential per-update engine with the
// coalescing parallel batch engine on the same SCION burst, and
// verifies the two end in byte-identical specialized programs.
func batchSection(bool) {
	header("Batch engine: sequential Apply vs coalesced ApplyBatch (SCION burst)")
	p := progs.Scion()
	load := func(workers int) *core.Specializer {
		s, err := p.LoadWith(core.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			log.Fatal(err)
		}
		return s
	}
	batch := make([]*controlplane.Update, 1000)
	for i := range batch {
		batch[i] = progs.ScionBurstEntry(i)
	}

	seq := load(1)
	t0 := time.Now()
	for i, u := range batch {
		if seq.Apply(u).Kind == core.Rejected {
			log.Fatalf("burst entry %d rejected", i)
		}
	}
	seqTime := time.Since(t0)

	bat := load(0)
	t0 = time.Now()
	for i, d := range bat.ApplyBatch(batch) {
		if d.Kind == core.Rejected {
			log.Fatalf("batched entry %d rejected", i)
		}
	}
	batTime := time.Since(t0)

	fmt.Printf("sequential: 1000 × Apply      %12v  (%v/update)\n",
		seqTime.Round(time.Millisecond), (seqTime / 1000).Round(time.Microsecond))
	st := bat.Statistics()
	workers := st.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("batched:    1 × ApplyBatch    %12v  (%v/update, %d eval passes coalesced, %d workers)\n",
		batTime.Round(time.Millisecond), (batTime / 1000).Round(time.Microsecond), st.Coalesced, workers)
	fmt.Printf("speedup:    %.1f×\n", float64(seqTime)/float64(batTime))
	if goflaySpec(seq) != goflaySpec(bat) {
		log.Fatal("batched and sequential specialized programs diverged")
	}
	fmt.Println("\n(end states verified byte-identical; the batch engine recompiles each")
	fmt.Println("touched assignment once and re-evaluates the union of tainted points in")
	fmt.Println("a single parallel pass instead of per update)")
}

func goflaySpec(s *core.Specializer) string { return ast.Print(s.SpecializedProgram()) }

// ---------------------------------------------------------------------------

// cacheSection measures the taint-keyed specialization-query cache on
// the Fig. 1-style SCION burst: the same representative-config + 1000
// fuzzer-entry stream is run with the cache disabled and enabled, the
// two end states are verified byte-identical, and the cached run must
// achieve a >50% hit rate (the acceptance bar). It then snapshots the
// warm engine and compares a warm restore against a fresh open +
// representative replay.
func cacheSection(bool) {
	header("Query cache: taint-keyed memoization + warm-start snapshot (SCION burst)")
	p := progs.Scion()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cache verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	run := func(nocache bool) (*core.Specializer, time.Duration) {
		s, err := p.LoadWith(core.Options{NoCache: nocache})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < 1000; i++ {
			if s.Apply(progs.ScionBurstEntry(i)).Kind == core.Rejected {
				log.Fatalf("burst entry %d rejected", i)
			}
		}
		return s, time.Since(t0)
	}

	cold, coldTime := run(true)
	warm, warmTime := run(false)
	st := warm.Statistics()
	queries := st.CacheHits + st.CacheMisses
	if queries == 0 {
		fail("cached run issued no cache queries")
	}
	rate := float64(st.CacheHits) / float64(queries)
	fmt.Printf("cache off:  1000 × Apply      %12v  (%v/update)\n",
		coldTime.Round(time.Millisecond), (coldTime / 1000).Round(time.Microsecond))
	fmt.Printf("cache on:   1000 × Apply      %12v  (%v/update)\n",
		warmTime.Round(time.Millisecond), (warmTime / 1000).Round(time.Microsecond))
	fmt.Printf("speedup:    %.1f×\n", float64(coldTime)/float64(warmTime))
	fmt.Printf("\nhits=%d misses=%d evictions=%d  hit rate %.1f%%\n",
		st.CacheHits, st.CacheMisses, st.CacheEvictions, 100*rate)

	if goflaySpec(cold) != goflaySpec(warm) {
		fail("cached and uncached specialized programs diverged")
	}
	if rate <= 0.5 {
		fail("hit rate %.1f%% is below the 50%% acceptance bar", 100*rate)
	}
	fmt.Println("cross-check: end states byte-identical, hit rate above the 50% bar")

	// Warm-start: snapshot the warm engine, then compare restoring it
	// against rebuilding the same state from source.
	snap, err := warm.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	restored, err := core.Restore(snap, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	restoreTime := time.Since(t0)
	t0 = time.Now()
	fresh, err := p.LoadWith(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.ApplyRepresentative(fresh); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if fresh.Apply(progs.ScionBurstEntry(i)).Kind == core.Rejected {
			log.Fatalf("burst entry %d rejected", i)
		}
	}
	freshTime := time.Since(t0)
	if goflaySpec(restored) != goflaySpec(warm) {
		fail("restored specialized program diverged from the snapshotted engine")
	}
	fmt.Printf("\nsnapshot:   %d bytes\n", len(snap))
	fmt.Printf("restore:    %12v  (vs %v rebuilding from source, %.1f×)\n",
		restoreTime.Round(time.Microsecond), freshTime.Round(time.Millisecond),
		float64(freshTime)/float64(restoreTime))

	rep.Cache = &cacheReport{
		Hits:          st.CacheHits,
		Misses:        st.CacheMisses,
		Evictions:     st.CacheEvictions,
		HitRate:       rate,
		NoCacheMS:     coldTime.Milliseconds(),
		CacheMS:       warmTime.Milliseconds(),
		Speedup:       float64(coldTime) / float64(warmTime),
		SnapshotBytes: len(snap),
		RestoreMS:     float64(restoreTime.Microseconds()) / 1000,
		FreshMS:       float64(freshTime.Microseconds()) / 1000,
	}
	fmt.Println("\n(hits replay memoized verdicts without substituting or querying the")
	fmt.Println("solver; past the overapproximation threshold the burst table's")
	fmt.Println("fingerprint stabilizes and tainted points hit on every update)")
}

// ---------------------------------------------------------------------------

// ddSection measures the decision-diagram query core against the probe
// solver on the SCION burst — the same workload as the cache section,
// but with the query cache off on both arms so every point
// re-evaluation runs a real specialization query instead of replaying a
// memo. The diagram arm compiles each point's residue once and answers
// subsequent queries by walking the canonical diagram; the solver arm
// substitutes and probes per query. The section verifies the two arms
// verdict-for-verdict and byte-identical on the specialized program,
// then gates the query-pass (EvalTime) speedup at >= 3x.
func ddSection(bool) {
	header("Decision diagrams: compiled residues vs per-query solver probes (middleblock ACL, precise mode)")
	p := progs.Middleblock()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dd verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	// Precise mode (no overapproximation) on a growing ACL is the
	// query shape the diagram core exists for: every installed entry
	// re-evaluates match-conjunction residues whose satisfying
	// assignments the probe solver hunts across a >100-bit space,
	// while the diagram answers from compiled roots and memoized
	// re-compiles. The value cache is off in both engines so the
	// comparison is pure query machinery.
	const updates = 250
	run := func(noDD bool) *core.Specializer {
		s, err := p.LoadWith(core.Options{NoCache: true, NoDD: noDD, OverapproxThreshold: -1})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < updates; i++ {
			if d := s.Apply(progs.MiddleblockACLEntry(i)); d.Kind == core.Rejected {
				log.Fatalf("ACL entry %d rejected: %v", i, d.Err)
			}
		}
		return s
	}

	solver := run(true)
	ddEng := run(false)
	sst, dst := solver.Statistics(), ddEng.Statistics()
	if dst.DDQueries == 0 {
		fail("diagram engine answered no queries on the diagram path")
	}
	if sst.DDQueries != 0 || sst.DDNodes != 0 {
		fail("NoDD engine reported diagram activity: %+v", sst)
	}
	for id := 0; id < sst.Points; id++ {
		sv, dv := solver.Verdict(id), ddEng.Verdict(id)
		if sv.Kind != dv.Kind || sv.Val != dv.Val {
			fail("point %d: solver says %s, diagram says %s", id, sv, dv)
		}
	}
	if goflaySpec(solver) != goflaySpec(ddEng) {
		fail("diagram and solver specialized programs diverged")
	}

	speedup := float64(sst.EvalTime) / float64(dst.EvalTime)
	fmt.Printf("solver:   %d × Apply  query pass %12v  (%v/update)\n",
		updates, sst.EvalTime.Round(time.Millisecond), (sst.EvalTime / updates).Round(time.Microsecond))
	fmt.Printf("diagram:  %d × Apply  query pass %12v  (%v/update)\n",
		updates, dst.EvalTime.Round(time.Millisecond), (dst.EvalTime / updates).Round(time.Microsecond))
	fmt.Printf("speedup:  %.1f×\n", speedup)
	fmt.Printf("\ndd queries=%d fallbacks=%d compiles=%d nodes=%d\n",
		dst.DDQueries, dst.DDFallbacks, dst.DDCompiles, dst.DDNodes)
	fmt.Println("cross-check: verdicts identical point-for-point, end states byte-identical")
	if speedup < 3.0 {
		fail("query-pass speedup %.2fx is below the 3x acceptance bar", speedup)
	}

	rep.DD = &ddReport{
		Updates:      updates,
		SolverEvalMS: sst.EvalTime.Milliseconds(),
		DDEvalMS:     dst.EvalTime.Milliseconds(),
		Speedup:      speedup,
		DDQueries:    dst.DDQueries,
		DDFallbacks:  dst.DDFallbacks,
		DDCompiles:   dst.DDCompiles,
		DDNodes:      dst.DDNodes,
	}
	fmt.Println("\n(each point's residual condition compiles into the shared canonical")
	fmt.Println("diagram exactly once per assignment epoch; a query is then a")
	fmt.Println("root-to-terminal walk instead of substitution plus solver probes)")
}

// ---------------------------------------------------------------------------

// precisionSection exercises the adaptive precision controller on the
// paper's worst-case workload (Table 3): the middleblock Pre-Ingress
// ACL with static overapproximation disabled, so precise update cost
// grows linearly with installed entries. A 10000-entry burst driven
// with a 50ms per-update budget must keep p99 under the budget by
// degrading the table mid-flight — soundly, which the differential
// check and a final promotion both verify (zero unsound degraded
// verdicts). A short no-deadline baseline shows the latency growth the
// controller is defending against.
func precisionSection(bool) {
	header("Adaptive precision: 10000-entry ACL burst under a 50ms deadline (middleblock)")
	const (
		entries  = 10000
		baseline = 300 // no-deadline arm, truncated: precise cost is O(entries) per update
		budget   = 50 * time.Millisecond
	)
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "precision verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	quantile := func(sorted []time.Duration, q float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(q*float64(len(sorted)-1)+0.5)]
	}
	p := progs.Middleblock()
	opts := func(reg *obs.Registry, trail *obs.Trail) core.Options {
		return core.Options{
			OverapproxThreshold: -1, // never overapproximate statically
			RepairInterval:      -1, // no background repair: promotion is explicit below
			Metrics:             reg, Audit: trail,
		}
	}

	// Baseline arm: no deadline, precise forever. Truncated to
	// `baseline` entries — the full 10k precise run is the quadratic
	// blowup this section exists to avoid.
	base, err := p.LoadWith(opts(nil, nil))
	if err != nil {
		log.Fatal(err)
	}
	baseLat := make([]time.Duration, 0, baseline)
	for i := 0; i < baseline; i++ {
		d := base.Apply(progs.MiddleblockACLEntry(i))
		if d.Kind == core.Rejected {
			log.Fatalf("baseline entry %d rejected: %v", i, d.Err)
		}
		baseLat = append(baseLat, d.Elapsed)
	}
	sortDurations(baseLat)
	basep99, basemax := quantile(baseLat, 0.99), baseLat[len(baseLat)-1]
	fmt.Printf("no deadline (first %d entries, precise): p99=%v max=%v — unbounded growth\n",
		baseline, basep99.Round(10*time.Microsecond), basemax.Round(10*time.Microsecond))

	// Deadline arm: the full burst, each update under a 50ms budget.
	reg := obs.NewRegistry()
	trail := obs.NewTrail(0)
	s, err := p.LoadWith(opts(reg, trail))
	if err != nil {
		log.Fatal(err)
	}
	lat := make([]time.Duration, 0, entries)
	degradedVerdicts := 0
	t0 := time.Now()
	for i := 0; i < entries; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		d := s.ApplyCtx(ctx, progs.MiddleblockACLEntry(i))
		cancel()
		if d.Kind == core.Rejected {
			log.Fatalf("deadline entry %d rejected: %v", i, d.Err)
		}
		if d.Degraded {
			degradedVerdicts++
		}
		lat = append(lat, d.Elapsed)
	}
	el := time.Since(t0)
	st := s.Statistics()
	peakDegraded := st.DegradedTables
	sortDurations(lat)
	p50, p95, p99 := quantile(lat, 0.50), quantile(lat, 0.95), quantile(lat, 0.99)
	max := lat[len(lat)-1]
	fmt.Printf("50ms deadline (%d entries):             p50=%v p95=%v p99=%v max=%v (%v total)\n",
		entries, p50.Round(time.Microsecond), p95.Round(time.Microsecond),
		p99.Round(10*time.Microsecond), max.Round(10*time.Microsecond), el.Round(time.Millisecond))
	fmt.Printf("degradations=%d degraded_tables=%d degraded_verdicts=%d (%.1f%% of burst)\n",
		st.Degradations, peakDegraded, degradedVerdicts, 100*float64(degradedVerdicts)/entries)

	// Soundness: every degraded verdict re-run precisely must agree
	// (conservative flips allowed, unsound ones counted — must be zero),
	// both via the background differential check and a full promotion.
	checked, unsound, err := s.DifferentialCheck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("differential check: %d degraded verdicts re-run precisely, %d unsound\n", checked, unsound)
	promoteUnsound, err := s.PromoteAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promotion: all tables restored to precise, %d unsound flips\n", promoteUnsound)

	decisions := trail.CountByDecision()
	if st.Degradations < 1 {
		fail("no degradations on a %d-entry precise burst under a %v budget", entries, budget)
	}
	if p99 >= budget {
		fail("p99 %v did not stay under the %v budget", p99, budget)
	}
	if unsound != 0 || promoteUnsound != 0 {
		fail("unsound degraded verdicts: differential=%d promotion=%d (must be zero)", unsound, promoteUnsound)
	}
	if checked == 0 {
		fail("differential check examined no points despite %d degradations", st.Degradations)
	}
	if decisions["degrade"] < 1 || decisions["promote"] < 1 {
		fail("audit trail tally %v lacks degrade/promote records", decisions)
	}
	if got := reg.Counter("core.degradations").Value(); got != int64(st.Degradations) {
		fail("core.degradations counter %d, engine stats %d", got, st.Degradations)
	}
	if len(s.DegradedTables()) != 0 {
		fail("tables still degraded after PromoteAll: %v", s.DegradedTables())
	}
	fmt.Println("cross-check: p99 under budget, audit + metrics agree, zero unsound verdicts")

	rep.Precision = &precisionReport{
		Entries:         entries,
		DeadlineMS:      budget.Milliseconds(),
		Degradations:    st.Degradations,
		Promotions:      s.Statistics().Promotions,
		DegradedTables:  peakDegraded,
		P50NS:           p50.Nanoseconds(),
		P95NS:           p95.Nanoseconds(),
		P99NS:           p99.Nanoseconds(),
		MaxNS:           max.Nanoseconds(),
		BaselineEntries: baseline,
		BaselineP99NS:   basep99.Nanoseconds(),
		BaselineMaxNS:   basemax.Nanoseconds(),
		DiffChecked:     checked,
		Unsound:         unsound + promoteUnsound,
		AuditDegrades:   decisions["degrade"],
		AuditPromotes:   decisions["promote"],
	}
	fmt.Println("\n(the controller degrades the ACL to the overapproximated assignment the")
	fmt.Println("moment its EWMA cost projection no longer fits the budget, so the burst")
	fmt.Println("stays milliseconds-class; promotion restores full precision afterwards)")
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// ---------------------------------------------------------------------------

// churnReport records the trace-driven churn section: per program ×
// pattern latency quantiles and throughput, with the pattern's
// steady-state invariant and the engine's accounting verified before
// the report is emitted.
type churnReport struct {
	Updates int        `json:"updates_per_pattern"`
	Rows    []churnRow `json:"rows"`
}

type churnRow struct {
	Program       string  `json:"program"`
	Pattern       string  `json:"pattern"`
	Batches       int     `json:"batches"`
	LiveEntries   int     `json:"live_entries"`
	P50NS         int64   `json:"update_p50_ns"`
	P95NS         int64   `json:"update_p95_ns"`
	P99NS         int64   `json:"update_p99_ns"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// churnSection replays every trace-driven churn pattern against the
// production-shaped programs, batched the way a controller would push
// it. Each cell cross-checks the engine's accounting (exact update
// count, zero rejections, the pattern's declared steady-state entry
// count) and any violation exits non-zero. The soak tier
// (make soak-churn) runs the same patterns orders of magnitude longer
// through flayd.
func churnSection(bool) {
	header("Churn: trace-driven update patterns on the production-shaped programs")
	const n = 240
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "churn verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	quantile := func(sorted []time.Duration, q float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(q*float64(len(sorted)-1)+0.5)]
	}
	fmt.Printf("%-11s %-12s %8s %8s | %10s %10s %10s | %10s\n",
		"program", "pattern", "updates", "batches", "p50", "p95", "p99", "upd/s")
	report := &churnReport{Updates: n}
	for _, name := range []string{"nat44", "l4lb", "tunnelterm"} {
		p, err := progs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range fuzz.PatternKinds() {
			s, err := p.LoadWith(core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				log.Fatal(err)
			}
			before := s.Cfg.NumEntries(p.BurstTable)
			beforeUpdates := s.Statistics().Updates
			cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
				Kind: kind, Table: p.BurstTable, Updates: n, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			batches := cs.Batches()
			lat := make([]time.Duration, 0, n)
			t0 := time.Now()
			for _, batch := range batches {
				for i, d := range s.ApplyBatch(batch) {
					if d.Kind == core.Rejected {
						fail("%s/%s: update %s rejected: %v", name, kind, batch[i], d.Err)
					}
					lat = append(lat, d.Elapsed)
				}
			}
			el := time.Since(t0)

			st := s.Statistics()
			if got := st.Updates - beforeUpdates; got != n {
				fail("%s/%s: engine processed %d churn updates, want %d", name, kind, got, n)
			}
			if st.Rejected != 0 {
				fail("%s/%s: %d rejections", name, kind, st.Rejected)
			}
			live := s.Cfg.NumEntries(p.BurstTable) - before
			if err := cs.CheckInvariant(live); err != nil {
				fail("%v", err)
			}
			sortDurations(lat)
			p50, p95, p99 := quantile(lat, 0.50), quantile(lat, 0.95), quantile(lat, 0.99)
			ups := float64(n) / el.Seconds()
			fmt.Printf("%-11s %-12s %8d %8d | %10v %10v %10v | %10.0f\n",
				name, kind, n, len(batches),
				p50.Round(time.Microsecond), p95.Round(time.Microsecond),
				p99.Round(time.Microsecond), ups)
			report.Rows = append(report.Rows, churnRow{
				Program: name, Pattern: kind.String(),
				Batches: len(batches), LiveEntries: live,
				P50NS: p50.Nanoseconds(), P95NS: p95.Nanoseconds(), P99NS: p99.Nanoseconds(),
				UpdatesPerSec: ups,
			})
		}
	}
	rep.Churn = report
	fmt.Println("\ncross-check: per-cell update counts, zero rejections, and each")
	fmt.Println("pattern's steady-state entry invariant verified against the engine")
	fmt.Println("\n(diurnal/flap streams end where they began; acl-rollout only grows;")
	fmt.Println("gc retains a small working set — the engine must track all of it exactly)")
}

// ---------------------------------------------------------------------------

// ablation explores the paper's §6 future-work axis: the tradeoff
// between recompilation frequency and specialization quality, measured
// on the SCION representative-config + burst workload.
func ablation(bool) {
	header("Ablation (§6): specialization quality vs recompilation frequency")
	fmt.Printf("%-14s | %12s | %8s | %6s | %6s | %8s\n",
		"quality", "recompiles", "forwards", "stages", "tcam", "mean-upd")
	for _, q := range []core.Quality{core.QualityFull, core.QualityNoNarrowing, core.QualityDCEOnly, core.QualityNone} {
		p := progs.Scion()
		s, err := p.LoadWith(core.Options{Quality: q})
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range p.Representative() {
			if d := s.Apply(u); d.Kind == core.Rejected {
				log.Fatal(d.Err)
			}
		}
		for i := 0; i < 200; i++ {
			if d := s.Apply(progs.ScionBurstEntry(i)); d.Kind == core.Rejected {
				log.Fatal("burst entry rejected")
			}
		}
		res, err := devcompiler.New(devcompiler.TargetTofino).Compile(s.SpecializedProgram())
		if err != nil {
			log.Fatal(err)
		}
		st := s.Statistics()
		mean := time.Duration(0)
		if st.Updates > 0 {
			mean = st.UpdateTime / time.Duration(st.Updates)
		}
		fmt.Printf("%-14s | %12d | %8d | %3d/%2d | %6d | %8v\n",
			q, st.Recompilations, st.Forwarded,
			res.Allocation.StagesUsed, res.Allocation.Device.Stages,
			res.Allocation.TCAMBlocks, mean.Round(10*time.Microsecond))
	}
	// The recompilation axis shows up under mask churn (the Fig. 3
	// pattern): alternating full- and partial-mask entries repeatedly
	// flip a narrowed implementation back and forth.
	fmt.Println("\nmask-churn workload (fig3 table, 40 alternating-mask inserts):")
	fmt.Printf("%-14s | %12s | %8s\n", "quality", "recompiles", "forwards")
	for _, q := range []core.Quality{core.QualityFull, core.QualityNoNarrowing, core.QualityDCEOnly, core.QualityNone} {
		p3 := progs.Fig3()
		s, err := p3.LoadWith(core.Options{Quality: q})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			mask := uint64(0xFFFFFFFFFFFF)
			if i%4 == 3 {
				mask = 0xFFFFFFFFFFF0 // every 4th entry is partially masked
			}
			e := &controlplane.TableEntry{
				Priority: i,
				Matches: []controlplane.FieldMatch{{
					Kind: controlplane.MatchTernary, Value: sym.NewBV(48, uint64(0x1000+i)), Mask: sym.NewBV(48, mask),
				}},
				Action: "set", Params: []sym.BV{sym.NewBV(16, uint64(i))},
			}
			kind := controlplane.InsertEntry
			u := &controlplane.Update{Kind: kind, Table: "Ingress.eth_table", Entry: e}
			if d := s.Apply(u); d.Kind == core.Rejected {
				log.Fatal(d.Err)
			}
			if i%4 == 3 {
				// Remove the masked entry again: with narrowing enabled
				// this forces exact→ternary→exact flapping.
				u := &controlplane.Update{Kind: controlplane.DeleteEntry, Table: "Ingress.eth_table", Entry: e}
				if d := s.Apply(u); d.Kind == core.Rejected {
					log.Fatal(d.Err)
				}
			}
		}
		st := s.Statistics()
		fmt.Printf("%-14s | %12d | %8d\n", q, st.Recompilations, st.Forwarded)
	}
	fmt.Println("\nlower quality trades resource savings (more stages/TCAM used) for")
	fmt.Println("stability (fewer recompilations and cheaper updates) — the tradeoff")
	fmt.Println("space the paper proposes exploring with Flay as the vehicle.")
}

// ---------------------------------------------------------------------------

// scalingCell is one point on the reads-vs-writes scaling curve.
type scalingCell struct {
	// Mode is "lockfree" (the epoch read path) or "locked" (the
	// Options.LockedReads ablation — the seed engine's RWMutex path).
	Mode       string  `json:"mode"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Readers    int     `json:"readers"`
	ReadOps    int64   `json:"read_ops"`
	ReadRate   float64 `json:"read_ops_per_sec"`
	Updates    int     `json:"writer_updates"`
	WriteRate  float64 `json:"writer_updates_per_sec"`
	ElapsedMS  int64   `json:"elapsed_ms"`
}

// scalingReport is the multicore scaling curve: wait-free read
// throughput under continuous write churn, across GOMAXPROCS, against
// the locked-read ablation. The gates run before the report is
// emitted; a failure exits non-zero.
type scalingReport struct {
	Program string        `json:"program"`
	Readers int           `json:"readers"`
	NumCPU  int           `json:"num_cpu"`
	Cells   []scalingCell `json:"cells"`
	// SpeedupVsSeed is lockfree@8 read throughput over the seed
	// configuration (locked reads at GOMAXPROCS=1). Gated >= 3.0.
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
	// Speedup8v1 is lockfree@8 over lockfree@1; gated >= 3.0 only when
	// the host actually has 8 CPUs (pure GOMAXPROCS scaling needs them).
	Speedup8v1 float64 `json:"speedup_8v1"`
}

// scalingVerdictHash folds an engine's published epoch into one
// comparable fingerprint for the replay-equivalence gate.
func scalingVerdictHash(s *core.Specializer) uint64 {
	h := fnv.New64a()
	v := s.Epoch()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for id := 0; id < v.NumVerdicts(); id++ {
		vd := v.Verdict(id)
		put(uint64(vd.Kind))
		put(uint64(vd.Val.W))
		put(vd.Val.Hi)
		put(vd.Val.Lo)
	}
	put(v.Generation)
	return h.Sum64()
}

// scalingMeasure runs one cell: a write goroutine churning the engine
// through controller-shaped batches while fixed reader goroutines hammer
// the read API, for a fixed window at the given GOMAXPROCS. It verifies
// audit continuity and replay equivalence (the concurrent engine's end
// state must equal a sequential engine replaying the same batch prefix)
// before reporting, and returns the cell.
func scalingMeasure(p *progs.Program, mode string, g, readers int, window time.Duration, fail func(string, ...any)) scalingCell {
	old := runtime.GOMAXPROCS(g)
	defer runtime.GOMAXPROCS(old)

	trail := obs.NewTrail(0)
	s, err := p.LoadWith(core.Options{Workers: 4, LockedReads: mode == "locked", Audit: trail})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := p.ApplyRepresentative(s); err != nil {
		log.Fatal(err)
	}
	baseUpdates := s.Statistics().Updates

	// One churn cycle plus its drain returns the table to its pre-churn
	// state, so the writer can cycle indefinitely without key collisions.
	cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
		Kind: fuzz.Diurnal, Table: p.BurstTable, Updates: 256, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cycle := append(cs.Batches(), cs.Drain())

	done := make(chan struct{})
	var wg sync.WaitGroup
	ops := make([]int64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var n int64
			for {
				select {
				case <-done:
					ops[r] = n
					return
				default:
				}
				// The decision-query read mix: a verdict probe, a table
				// entry count, and the snapshot-dirtiness cursor.
				_ = s.Verdict(int(n) % len(s.An.Points))
				_ = s.Entries(p.BurstTable)
				_ = s.Generation()
				n += 3
			}
		}(r)
	}

	var applied [][]*controlplane.Update
	updates := 0
	t0 := time.Now()
	deadline := t0.Add(window)
	for bi := 0; time.Now().Before(deadline); bi++ {
		batch := cycle[bi%len(cycle)]
		for i, d := range s.ApplyBatch(batch) {
			if d.Kind == core.Rejected {
				fail("%s@%d: update %s rejected: %v", mode, g, batch[i], d.Err)
			}
		}
		applied = append(applied, batch)
		updates += len(batch)
	}
	elapsed := time.Since(t0)
	close(done)
	wg.Wait()

	// Audit continuity: one record per update, Seq 1..N with no gap.
	recs := trail.Records()
	if len(recs) != baseUpdates+updates {
		fail("%s@%d: %d audit records for %d updates", mode, g, len(recs), baseUpdates+updates)
	}
	for i, rec := range recs {
		if rec.Seq != i+1 {
			fail("%s@%d: audit record %d has seq %d (gap)", mode, g, i, rec.Seq)
		}
	}

	// Replay equivalence: a sequential engine applying the same batch
	// prefix must land in the same end state.
	ref, err := p.LoadWith(core.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	if err := p.ApplyRepresentative(ref); err != nil {
		log.Fatal(err)
	}
	for _, batch := range applied {
		ref.ApplyBatch(batch)
	}
	if scalingVerdictHash(s) != scalingVerdictHash(ref) {
		fail("%s@%d: concurrent end state diverges from sequential replay", mode, g)
	}
	if a, b := s.Entries(p.BurstTable), ref.Entries(p.BurstTable); a != b {
		fail("%s@%d: %d live entries, sequential replay has %d", mode, g, a, b)
	}

	var total int64
	for _, n := range ops {
		total += n
	}
	return scalingCell{
		Mode: mode, GOMAXPROCS: g, Readers: readers,
		ReadOps: total, ReadRate: float64(total) / elapsed.Seconds(),
		Updates: updates, WriteRate: float64(updates) / elapsed.Seconds(),
		ElapsedMS: elapsed.Milliseconds(),
	}
}

// scalingSection emits the reads-vs-writes scaling curve: wait-free
// epoch readers against the LockedReads ablation (the seed engine's
// read path), under continuous write churn, across GOMAXPROCS 1/4/8/16.
// Gate: lockfree read throughput at GOMAXPROCS=8 must be at least 3x
// the seed configuration (locked reads at GOMAXPROCS=1); the pure
// lockfree 8-vs-1 ratio is additionally gated when the host has >= 8
// CPUs. Every cell also verifies audit continuity and sequential-replay
// equivalence — throughput never at the cost of consistency.
func scalingSection(full bool) {
	header("Scaling: wait-free reads vs locked baseline under write churn")
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scaling verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	window := 200 * time.Millisecond
	if full {
		window = 600 * time.Millisecond
	}
	const readers = 4
	p, err := progs.ByName("nat44")
	if err != nil {
		log.Fatal(err)
	}

	specs := []struct {
		mode string
		g    int
	}{
		{"locked", 1}, {"locked", 8},
		{"lockfree", 1}, {"lockfree", 4}, {"lockfree", 8}, {"lockfree", 16},
	}
	report := &scalingReport{Program: p.Name, Readers: readers, NumCPU: runtime.NumCPU()}
	rate := make(map[string]float64, len(specs))
	fmt.Printf("%-9s %11s %8s | %14s %14s\n", "mode", "gomaxprocs", "readers", "reads/s", "writes/s")
	for _, sp := range specs {
		cell := scalingMeasure(p, sp.mode, sp.g, readers, window, fail)
		report.Cells = append(report.Cells, cell)
		rate[fmt.Sprintf("%s@%d", sp.mode, sp.g)] = cell.ReadRate
		fmt.Printf("%-9s %11d %8d | %14.0f %14.0f\n",
			cell.Mode, cell.GOMAXPROCS, cell.Readers, cell.ReadRate, cell.WriteRate)
	}

	report.SpeedupVsSeed = rate["lockfree@8"] / rate["locked@1"]
	report.Speedup8v1 = rate["lockfree@8"] / rate["lockfree@1"]
	fmt.Printf("\nlockfree@8 vs seed (locked@1): %.2fx (gate: >= 3.0)\n", report.SpeedupVsSeed)
	fmt.Printf("lockfree@8 vs lockfree@1:      %.2fx (gated >= 3.0 when NumCPU >= 8; host has %d)\n",
		report.Speedup8v1, report.NumCPU)
	if report.SpeedupVsSeed < 3.0 {
		fail("lockfree@8 read throughput is %.2fx the seed configuration, want >= 3.0x", report.SpeedupVsSeed)
	}
	if report.NumCPU >= 8 && report.Speedup8v1 < 3.0 {
		fail("lockfree 8-vs-1 scaling is %.2fx on a %d-CPU host, want >= 3.0x", report.Speedup8v1, report.NumCPU)
	}
	rep.Scaling = report
	fmt.Println("\ncross-check: every cell verified audit continuity (gap-free seq) and")
	fmt.Println("sequential-replay equivalence of the concurrent end state")
}

// ---------------------------------------------------------------------------

// ppsRow is one program's packets/sec cell: the reference interpreter
// ("generic") against the bytecode executor ("jit") on the same frames
// and config, plus the jit rate under concurrent control-plane churn.
type ppsRow struct {
	Program      string  `json:"program"`
	Frames       int     `json:"frames"`
	GenericPPS   float64 `json:"generic_pps"`
	JITPPS       float64 `json:"jit_pps"`
	Speedup      float64 `json:"speedup"`
	DiffChecked  int     `json:"diff_checked"`
	ChurnPPS     float64 `json:"churn_pps"`
	ChurnUpdates int     `json:"churn_updates"`
}

// ppsReport is the packet-execution section: the 2x gate must hold on
// at least three catalog programs, every cell is differentially
// verified against the interpreter before and after churn, and audit
// and epoch continuity are checked under the concurrent writer.
type ppsReport struct {
	Rows []ppsRow `json:"rows"`
	At2x int      `json:"programs_at_2x"`
}

// ppsFrames builds a deterministic mix of plausible ethernet+IPv4+UDP
// frames (randomized addresses, ports and TTLs) and short junk frames,
// so the measurement exercises both the parsed fast path and the
// parser-reject path.
func ppsFrames(seed int64, n int) ([][]byte, []uint16) {
	r := rand.New(rand.NewSource(seed))
	frames := make([][]byte, n)
	ports := make([]uint16, n)
	for i := range frames {
		if i%8 == 7 {
			f := make([]byte, r.Intn(32))
			r.Read(f)
			frames[i] = f
		} else {
			f := make([]byte, 46)
			r.Read(f[:12])   // eth dst+src
			f[12], f[13] = 0x08, 0x00
			f[14] = 0x45     // v4, IHL 5
			f[17] = 32       // total length
			f[19] = byte(i)  // id
			f[22] = byte(1 + r.Intn(255)) // ttl
			f[23] = 17       // udp
			r.Read(f[26:38]) // src+dst addr, src+dst port
			f[39] = 12       // udp length
			frames[i] = f
		}
		ports[i] = uint16(r.Intn(48))
	}
	return frames, ports
}

// ppsSection measures packets/sec on the catalog's production-shaped
// programs: the flattened bytecode image against the tree-walking
// reference interpreter, packet-for-packet equivalent by construction
// and by the per-cell differential check run before and after a churn
// arm that hammers the executor while a writer replays trace-driven
// batches. Gates: jit >= 2x generic on at least three programs; zero
// verdict divergences; gap-free audit trail; epoch update counters
// never observed going backwards mid-churn. Any violation exits
// non-zero.
func ppsSection(full bool) {
	header("Packets/sec: bytecode executor vs reference interpreter (catalog)")
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pps verification failed: "+format+"\n", args...)
		os.Exit(1)
	}
	window := 150 * time.Millisecond
	if full {
		window = 500 * time.Millisecond
	}
	const nframes = 256
	report := &ppsReport{}
	fmt.Printf("%-12s %8s | %12s %12s %8s | %12s %8s\n",
		"program", "frames", "generic/s", "jit/s", "speedup", "churn jit/s", "updates")
	for _, name := range []string{"nat44", "l4lb", "tunnelterm", "scion", "middleblock"} {
		p, err := progs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		trail := obs.NewTrail(0)
		s, err := p.LoadWith(core.Options{Exec: true, Workers: 4, Audit: trail})
		if err != nil {
			log.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			log.Fatal(err)
		}
		frames, ports := ppsFrames(int64(len(name)), nframes)

		// Per-cell differential: every frame must produce the same
		// verdict and output bytes on the jit image as on the reference
		// interpreter, with error parity.
		diffCell := func(stage string) int {
			in := bmv2.New(s.Prog, s.Info, s.Cfg)
			img := s.ExecImage()
			if img == nil {
				fail("%s: engine published no exec image", name)
			}
			m := dpexec.NewMachine()
			for i, data := range frames {
				want, err1 := in.Run(bmv2.Packet{Data: data, IngressPort: ports[i]})
				got, err2 := m.Run(img, data, ports[i])
				if (err1 == nil) != (err2 == nil) {
					fail("%s %s frame %d: error divergence: bmv2 %v vs jit %v", name, stage, i, err1, err2)
				}
				if err1 == nil && !got.Equal(dpexec.Result{Dropped: want.Dropped, EgressPort: want.EgressPort,
					McastGrp: want.McastGrp, Emitted: want.Emitted}) {
					fail("%s %s frame %d: verdict divergence", name, stage, i)
				}
			}
			return len(frames)
		}
		checked := diffCell("pre-churn")

		measure := func(run func(i int)) float64 {
			t0 := time.Now()
			deadline := t0.Add(window)
			n := 0
			for time.Now().Before(deadline) {
				run(n % nframes)
				n++
			}
			return float64(n) / time.Since(t0).Seconds()
		}
		in := bmv2.New(s.Prog, s.Info, s.Cfg)
		generic := measure(func(i int) {
			_, _ = in.Run(bmv2.Packet{Data: frames[i], IngressPort: ports[i]})
		})
		img := s.ExecImage()
		m := dpexec.NewMachine()
		jit := measure(func(i int) {
			_, _ = m.Run(img, frames[i], ports[i])
		})

		// Churn arm: a writer replays trace-driven diurnal batches (each
		// cycle drains back to the pre-churn state) while the executor
		// re-reads the epoch per packet — image always present, update
		// counter never going backwards.
		cs, err := fuzz.Churn(s.An, fuzz.ChurnSpec{
			Kind: fuzz.Diurnal, Table: p.BurstTable, Updates: 128, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		cycle := append(cs.Batches(), cs.Drain())
		baseUpdates := s.Statistics().Updates
		done := make(chan struct{})
		var wg sync.WaitGroup
		churnUpdates := 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := 0; ; bi++ {
				select {
				case <-done:
					return
				default:
				}
				batch := cycle[bi%len(cycle)]
				for i, d := range s.ApplyBatch(batch) {
					if d.Kind == core.Rejected {
						fail("%s: churn update %s rejected: %v", name, batch[i], d.Err)
					}
				}
				churnUpdates += len(batch)
			}
		}()
		lastUpdates := 0
		churn := measure(func(i int) {
			v := s.Epoch()
			im := v.Image()
			if im == nil {
				fail("%s: nil exec image mid-churn", name)
			}
			if v.Stats.Updates < lastUpdates {
				fail("%s: epoch update counter went backwards (%d after %d)", name, v.Stats.Updates, lastUpdates)
			}
			lastUpdates = v.Stats.Updates
			if _, err := m.Run(im, frames[i], ports[i]); err != nil {
				fail("%s: jit trap mid-churn on frame %d: %v", name, i, err)
			}
		})
		close(done)
		wg.Wait()

		// Audit continuity: one record per update, gap-free sequence.
		recs := trail.Records()
		if len(recs) != baseUpdates+churnUpdates {
			fail("%s: %d audit records for %d updates", name, len(recs), baseUpdates+churnUpdates)
		}
		for i, rec := range recs {
			if rec.Seq != i+1 {
				fail("%s: audit record %d has seq %d (gap)", name, i, rec.Seq)
			}
		}
		// Post-churn differential: the quiesced image is still
		// packet-for-packet equivalent to the interpreter on the
		// post-churn config.
		checked += diffCell("post-churn")

		speedup := jit / generic
		fmt.Printf("%-12s %8d | %12.0f %12.0f %7.1fx | %12.0f %8d\n",
			name, nframes, generic, jit, speedup, churn, churnUpdates)
		report.Rows = append(report.Rows, ppsRow{
			Program: name, Frames: nframes,
			GenericPPS: generic, JITPPS: jit, Speedup: speedup,
			DiffChecked: checked, ChurnPPS: churn, ChurnUpdates: churnUpdates,
		})
		if speedup >= 2 {
			report.At2x++
		}
		s.Close()
	}
	fmt.Printf("\nprograms at >= 2x: %d/%d (gate: >= 3)\n", report.At2x, len(report.Rows))
	if report.At2x < 3 {
		fail("only %d programs reached 2x specialized-vs-generic packets/sec, want >= 3", report.At2x)
	}
	rep.PPS = report
	fmt.Println("\ncross-check: every cell differentially verified against the reference")
	fmt.Println("interpreter before and after churn, with gap-free audit and monotone")
	fmt.Println("epoch update counters under the concurrent writer")
}
