// flayd is the long-running control-plane specialization daemon: it
// hosts one goflay.Pipeline per named session behind an HTTP/JSON API
// (see internal/server for the routes) and exports live engine metrics
// in Prometheus text format on /metrics.
//
// Usage:
//
//	flayd [flags]
//
//	-addr HOST:PORT      listen address (default 127.0.0.1:9444)
//	-snapshot-dir DIR    persist session snapshots here; on startup every
//	                     DIR/*.snap is warm-restarted into a live session
//	-coalesce DUR        coalescing window: writes arriving within DUR of
//	                     each other share one batched specialization pass
//	                     (0 disables coalescing)
//	-max-batch N         cap on updates funneled into one coalesced batch
//	-queue N             per-session bounded in-flight queue; a full queue
//	                     answers 429 (backpressure) instead of buffering
//	-audit-limit N       audit records retained per session (-1 = all)
//
// On SIGINT or SIGTERM flayd drains in-flight writes, snapshots every
// dirty session to -snapshot-dir, and exits 0 — so a restart with the
// same -snapshot-dir resumes every session warm, with audit sequence
// numbers continuing where they left off.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flayd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so the shutdown path is
// testable in-process: it returns nil after a clean signal-triggered
// drain, and main turns that into exit status 0.
func run(ctx context.Context, args []string, logw *os.File) error {
	fs, cfg, df := flags()
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "flayd: ", log.LstdFlags)
	cfg.Logf = logger.Printf

	srv, err := server.New(*cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", df.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	role := "active"
	if cfg.Standby {
		role = "standby"
	}
	logger.Printf("listening on http://%s as %s (snapshots: %s)", ln.Addr(), role, orNone(cfg.SnapshotDir))

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	var binLn net.Listener
	if df.binAddr != "" {
		binLn, err = net.Listen("tcp", df.binAddr)
		if err != nil {
			return err
		}
		logger.Printf("binary protocol on %s", binLn.Addr())
		go func() {
			if err := srv.ServeBin(binLn); err != nil {
				logger.Printf("binary listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight HTTP requests
	// finish, then drain the sessions and snapshot the dirty ones.
	logger.Printf("signal received; draining")
	if binLn != nil {
		binLn.Close() // srv.Shutdown closes the live binary connections
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		srv.Shutdown() // still try to persist state
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("session shutdown: %w", err)
	}
	logger.Printf("drained; exiting")
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
