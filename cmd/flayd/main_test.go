package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fuzz"
	"repro/internal/progs"
	"repro/internal/wire"
)

// freePort grabs an ephemeral port for a daemon under test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunGracefulShutdown drives the exact path a SIGTERM takes:
// signal.NotifyContext cancels run's context, the daemon drains, the
// dirty session is snapshotted, and run returns nil (exit 0). A second
// run over the same snapshot dir must warm-restart the session.
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	addr := freePort(t)

	boot := func(ctx context.Context) chan error {
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", addr, "-snapshot-dir", dir, "-coalesce", "0"}, os.Stderr)
		}()
		return errc
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := boot(ctx)
	c := client.New("http://" + addr)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(wire.CreateSessionRequest{Name: "s", Catalog: "fig3"}); err != nil {
		t.Fatal(err)
	}
	// Dirty the session so shutdown has something to persist: one
	// accepted update (a rejected one would not move the generation).
	p, err := progs.ByName("fig3")
	if err != nil {
		t.Fatal(err)
	}
	local, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := fuzz.New(local.An, 1).Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("s", wire.ModeSingle, stream); err != nil {
		t.Fatal(err)
	}

	cancel() // what SIGTERM does via signal.NotifyContext
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after graceful signal: %v (want nil, i.e. exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of the signal")
	}
	if _, err := os.Stat(filepath.Join(dir, "s.snap")); err != nil {
		t.Fatalf("shutdown did not snapshot the session: %v", err)
	}

	// Warm restart: same snapshot dir, fresh daemon, session is back.
	ctx2, cancel2 := context.WithCancel(context.Background())
	errc2 := boot(ctx2)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	info, err := c.Session("s")
	if err != nil {
		t.Fatalf("session gone after warm restart: %v", err)
	}
	if !info.Restored || info.Stats.Updates != 1 {
		t.Fatalf("restored session state wrong: %+v", info)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRunFlagErrors: bad flags and an unusable listen address fail
// fast with an error rather than hanging.
func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, os.Stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, os.Stderr); err == nil {
		t.Fatal("bogus listen address accepted")
	}
}
