package main

import (
	"flag"
	"time"

	"repro/internal/server"
)

// daemonFlags holds the listener-level options that are not part of
// server.Config.
type daemonFlags struct {
	addr    string
	binAddr string
}

// flags builds the daemon's flag set bound to a server.Config, kept
// separate from run so tests can exercise parsing without a listener.
func flags() (*flag.FlagSet, *server.Config, *daemonFlags) {
	fs := flag.NewFlagSet("flayd", flag.ContinueOnError)
	cfg := &server.Config{}
	df := &daemonFlags{}
	fs.StringVar(&df.addr, "addr", "127.0.0.1:9444", "listen address")
	fs.StringVar(&df.binAddr, "bin-addr", "", "binary-protocol listen address (empty disables the binary listener)")
	fs.StringVar(&cfg.SnapshotDir, "snapshot-dir", "", "persist and restore session snapshots in this directory")
	fs.DurationVar(&cfg.CoalesceWindow, "coalesce", 2*time.Millisecond, "coalescing window for concurrent writes (0 disables)")
	fs.IntVar(&cfg.MaxBatch, "max-batch", 0, "max updates per coalesced batch (0 = default)")
	fs.IntVar(&cfg.QueueDepth, "queue", 0, "per-session in-flight write queue depth (0 = default)")
	fs.IntVar(&cfg.AuditLimit, "audit-limit", 0, "audit records retained per session (0 = default, -1 = all)")
	fs.DurationVar(&cfg.PressureDeadline, "pressure-deadline", 50*time.Millisecond,
		"latency budget attached to writes once a session queue is half full, degrading precision before 429s (0 disables)")
	fs.BoolVar(&cfg.Standby, "standby", false,
		"start as a hot standby: refuse client writes, accept replica streams, await promotion")
	fs.StringVar(&cfg.ReplicateTo, "replicate-to", "",
		"standby base URL to ship snapshots and write rounds to (empty disables replication)")
	return fs, cfg, df
}
