package main

import (
	"flag"
	"time"

	"repro/internal/server"
)

// flags builds the daemon's flag set bound to a server.Config, kept
// separate from run so tests can exercise parsing without a listener.
func flags() (*flag.FlagSet, *server.Config, *string) {
	fs := flag.NewFlagSet("flayd", flag.ContinueOnError)
	cfg := &server.Config{}
	addr := fs.String("addr", "127.0.0.1:9444", "listen address")
	fs.StringVar(&cfg.SnapshotDir, "snapshot-dir", "", "persist and restore session snapshots in this directory")
	fs.DurationVar(&cfg.CoalesceWindow, "coalesce", 2*time.Millisecond, "coalescing window for concurrent writes (0 disables)")
	fs.IntVar(&cfg.MaxBatch, "max-batch", 0, "max updates per coalesced batch (0 = default)")
	fs.IntVar(&cfg.QueueDepth, "queue", 0, "per-session in-flight write queue depth (0 = default)")
	fs.IntVar(&cfg.AuditLimit, "audit-limit", 0, "audit records retained per session (0 = default, -1 = all)")
	fs.DurationVar(&cfg.PressureDeadline, "pressure-deadline", 50*time.Millisecond,
		"latency budget attached to writes once a session queue is half full, degrading precision before 429s (0 disables)")
	return fs, cfg, addr
}
