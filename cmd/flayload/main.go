// flayload is a closed-loop load generator for flayd: it creates (or
// reuses) a session, drives a deterministic fuzz.Stream of control-plane
// updates through the HTTP API as a mix of single and batched writes,
// honors 429 backpressure with bounded retries, and reports throughput
// plus the daemon-side latency distribution (p50/p95/p99 of the
// engine's update and apply histograms) scraped from the server's
// metrics endpoint.
//
// Usage:
//
//	flayload [flags]
//
//	-addr HOST:PORT   daemon address (default 127.0.0.1:9444)
//	-session NAME     session to drive (default "load")
//	-program NAME     catalog program to load when creating it (default scion)
//	-n N              updates to send (default 1000)
//	-seed N           fuzz stream seed (default 1)
//	-batch N          updates per batched write (default 16)
//	-single-every N   send every Nth chunk as single-update writes
//	                  (0 = batches only)
//	-workers N        concurrent closed-loop writers (default 4)
//	-timeout DUR      overall run deadline (default 5m)
//	-report DUR       print interval throughput + latency snapshots
//	                  every DUR while running (0 = final report only)
//	-deadline DUR     per-write latency budget; the daemon may degrade
//	                  table precision to honor it, and flayload reports
//	                  the degradation rate alongside p50/p95/p99
//	-churn PATTERN    replay a deterministic trace-driven churn pattern
//	                  (diurnal|flapstorm|acl-rollout|gc) on the program's
//	                  churn table instead of a mixed fuzz stream; the
//	                  pattern's declared batches become the writes, the
//	                  run is forced to -workers 1 (in-order replay), and
//	                  the steady-state invariant is verified over the
//	                  wire from the session's live entry counts
//	-sessions N       swarm mode (cluster soak): create N sessions named
//	                  <session>-00000.. — through a flayfront the names
//	                  consistent-hash across the shard fleet — split -n
//	                  across them, drive each session's stream in order
//	                  from the worker pool with interleaved stats reads,
//	                  and finish with an exact per-session accounting
//	                  check (every session applied its full share, zero
//	                  rejected)
//	-read-every N     swarm mode: issue a stats read after every Nth
//	                  chunk of each session's stream (0 = writes only)
//
// The stream is generated locally against the same catalog program the
// session runs, so every update is valid for the session's evolving
// configuration when replayed in order; across concurrent workers the
// stream is dealt round-robin, which keeps inserts unique but may
// reorder dependent updates — flayd answers those with rejected
// verdicts, which flayload counts and reports rather than treating as
// failures (that is what a real controller racing itself would see).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "flayload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flayload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9444", "daemon address")
	session := fs.String("session", "load", "session name")
	program := fs.String("program", "scion", "catalog program for a fresh session")
	n := fs.Int("n", 1000, "updates to send")
	seed := fs.Uint64("seed", 1, "fuzz stream seed")
	batch := fs.Int("batch", 16, "updates per batched write")
	singleEvery := fs.Int("single-every", 4, "send every Nth chunk as single-update writes (0 = batches only)")
	workers := fs.Int("workers", 4, "concurrent closed-loop writers")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	report := fs.Duration("report", 0, "interval between progress reports (0 = final report only)")
	writeDeadline := fs.Duration("deadline", 0, "per-write latency budget (0 = none); the daemon may degrade precision to honor it")
	churnPat := fs.String("churn", "", "replay a churn pattern (diurnal|flapstorm|acl-rollout|gc) instead of a mixed fuzz stream")
	sessions := fs.Int("sessions", 1, "swarm mode: drive N concurrent sessions named <session>-00000.. with -n split across them (cluster soak)")
	readEvery := fs.Int("read-every", 3, "swarm mode: issue a stats read after every Nth chunk (0 = writes only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch <= 0 || *workers <= 0 || *n <= 0 {
		return fmt.Errorf("-n, -batch and -workers must be positive")
	}
	if *sessions > 1 && *churnPat != "" {
		return fmt.Errorf("-sessions and -churn are mutually exclusive")
	}

	// One pooled transport shared by every worker: each closed loop
	// keeps reusing its connection instead of dialing per write, and the
	// trace counters prove it in the final report.
	c := client.NewPooled("http://"+*addr, *workers)
	if err := c.WaitReady(10 * time.Second); err != nil {
		return err
	}

	if *sessions > 1 {
		return runSwarm(c, *session, *program, *sessions, *n, *seed, *batch, *singleEvery, *workers, *readEvery, *timeout)
	}

	// Create the session if it is not already live.
	if _, err := c.Session(*session); client.IsStatus(err, 404) {
		if _, err := c.CreateSession(wire.CreateSessionRequest{Name: *session, Catalog: *program}); err != nil {
			return fmt.Errorf("creating session: %w", err)
		}
	} else if err != nil {
		return err
	}

	// Generate the stream locally against the same program.
	p, err := progs.ByName(*program)
	if err != nil {
		return err
	}
	local, err := p.Load()
	if err != nil {
		return err
	}
	var (
		stream      []*controlplane.Update
		chunks      []chunk
		churn       *fuzz.ChurnStream
		churnBefore int
	)
	if *churnPat != "" {
		kind, err := fuzz.ParsePattern(*churnPat)
		if err != nil {
			return err
		}
		cs, err := fuzz.Churn(local.An, fuzz.ChurnSpec{
			Kind: kind, Table: p.BurstTable, Updates: *n, Seed: *seed,
		})
		if err != nil {
			return err
		}
		churn, stream = cs, cs.Updates
		for _, b := range cs.Batches() {
			mode := wire.ModeBatch
			if len(b) == 1 {
				mode = wire.ModeSingle
			}
			chunks = append(chunks, chunk{updates: b, mode: mode})
		}
		if *workers != 1 {
			fmt.Printf("flayload: -churn %s forces -workers 1 (patterns replay in declared order)\n", kind)
			*workers = 1
		}
		info, err := c.Session(*session)
		if err != nil {
			return err
		}
		churnBefore = info.Entries[p.BurstTable]
	} else {
		if stream, err = fuzz.New(local.An, *seed).Stream(*n); err != nil {
			return err
		}
		chunks = carve(stream, *batch, *singleEvery)
	}

	fmt.Printf("flayload: %d updates -> %s as %d chunks over %d workers\n",
		len(stream), *session, len(chunks), *workers)

	var (
		sent, retried, rejected, degraded atomic.Int64
		wg                                sync.WaitGroup
		errOnce                           sync.Once
		runErr                            error
		next                              = make(chan chunk, len(chunks))
	)
	for _, ch := range chunks {
		next <- ch
	}
	close(next)

	start := time.Now()
	deadline := start.Add(*timeout)

	// Interval reporter (satellite of the deadline work): scrape the
	// metrics endpoint every -report tick so a long run shows evolving
	// latency distributions and degradation counts instead of a single
	// post-mortem snapshot.
	reportDone := make(chan struct{})
	reportStopped := make(chan struct{})
	if *report > 0 {
		go func() {
			defer close(reportStopped)
			tick := time.NewTicker(*report)
			defer tick.Stop()
			var lastSent int64
			last := start
			for {
				select {
				case <-reportDone:
					return
				case now := <-tick.C:
					cur := sent.Load()
					snap, err := c.Metrics()
					if err != nil {
						fmt.Printf("[%6s] metrics scrape failed: %v\n",
							time.Since(start).Round(time.Second), err)
						continue
					}
					rate := float64(cur-lastSent) / now.Sub(last).Seconds()
					fmt.Printf("[%6s] sent=%d (+%.0f/s) retries=%d degraded=%d repairs=%d\n",
						time.Since(start).Round(time.Second), cur, rate, retried.Load(),
						snap.Counters["core.degradations"], snap.Counters["core.promotions"])
					printHist(snap, "core.update_ns", "  update")
					printHist(snap, "server.apply_ns", "  apply")
					lastSent, last = cur, now
				}
			}
		}()
	} else {
		close(reportStopped)
	}

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range next {
				if time.Now().After(deadline) {
					errOnce.Do(func() { runErr = fmt.Errorf("deadline %v exceeded", *timeout) })
					return
				}
				resp, retries, err := c.WriteRetryDeadline(*session, ch.mode, ch.updates, *writeDeadline, 50, 5*time.Millisecond)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				sent.Add(int64(len(ch.updates)))
				retried.Add(int64(retries))
				for _, d := range resp.Decisions {
					if d.Kind == "rejected" {
						rejected.Add(1)
					}
					if d.Precision == "degraded" {
						degraded.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(reportDone)
	<-reportStopped
	if runErr != nil {
		return runErr
	}
	elapsed := time.Since(start)

	st, err := c.Stats(*session)
	if err != nil {
		return err
	}
	snap, err := c.Metrics()
	if err != nil {
		return err
	}

	fmt.Printf("sent      %d updates in %v (%.0f updates/s), %d retries after 429\n",
		sent.Load(), elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds(), retried.Load())
	if cs := c.Conns(); cs != nil {
		total := cs.Dialed() + cs.Reused()
		reuse := float64(0)
		if total > 0 {
			reuse = 100 * float64(cs.Reused()) / float64(total)
		}
		fmt.Printf("conns     dialed=%d reused=%d (%.1f%% reuse over %d requests)\n",
			cs.Dialed(), cs.Reused(), reuse, total)
	}
	fmt.Printf("verdicts  forwarded=%d recompiled=%d rejected=%d (rejected seen by this run: %d)\n",
		st.Forwarded, st.Recompilations, st.Rejected, rejected.Load())
	fmt.Printf("cache     hits=%d misses=%d\n", st.CacheHits, st.CacheMisses)
	if *writeDeadline > 0 || degraded.Load() > 0 || st.Degradations > 0 {
		rate := float64(0)
		if s := sent.Load(); s > 0 {
			rate = 100 * float64(degraded.Load()) / float64(s)
		}
		fmt.Printf("precision degraded_verdicts=%d (%.1f%% of sent) degradations=%d promotions=%d degraded_tables=%d unsound=%d\n",
			degraded.Load(), rate, st.Degradations, st.Promotions, st.DegradedTables, st.UnsoundDegraded)
	}
	printHist(snap, "core.update_ns", "update")
	printHist(snap, "server.apply_ns", "apply")
	printHist(snap, "server.write_ns", "write")

	if churn != nil {
		if r := rejected.Load(); r > 0 {
			return fmt.Errorf("churn replay saw %d rejected updates (pattern streams must replay cleanly)", r)
		}
		info, err := c.Session(*session)
		if err != nil {
			return err
		}
		if err := churn.CheckInvariant(info.Entries[p.BurstTable] - churnBefore); err != nil {
			return fmt.Errorf("after replay: %w", err)
		}
		fmt.Printf("churn     pattern=%s batches=%d steady-state invariant holds (%+d live entries in %s)\n",
			*churnPat, len(chunks), churn.WantLive, p.BurstTable)
	}
	return nil
}

// chunk is one write request's worth of the stream.
type chunk struct {
	updates []*controlplane.Update
	mode    string
}

// carve splits the stream into batched writes of size batch, turning
// every singleEvery-th chunk into a run of single-update writes.
func carve(stream []*controlplane.Update, batch, singleEvery int) []chunk {
	var out []chunk
	for i := 0; len(stream) > 0; i++ {
		if singleEvery > 0 && i%singleEvery == singleEvery-1 {
			out = append(out, chunk{updates: stream[:1], mode: wire.ModeSingle})
			stream = stream[1:]
			continue
		}
		n := min(batch, len(stream))
		out = append(out, chunk{updates: stream[:n], mode: wire.ModeBatch})
		stream = stream[n:]
	}
	return out
}

// printHist reports one histogram's daemon-side latency distribution.
func printHist(snap obs.Snapshot, name, label string) {
	h, ok := snap.Histograms[name]
	if !ok || h.Count == 0 {
		return
	}
	fmt.Printf("%-9s p50=%v p95=%v p99=%v (n=%d)\n", label,
		time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99), h.Count)
}
