// Swarm mode (-sessions N > 1): the cluster soak driver. Instead of
// hammering one session, flayload creates N sessions named
// <session>-00000..<session>-NNNNN — through a flayfront those names
// consistent-hash across the shard fleet — and drives each with its
// own deterministic stream, in order, from a bounded worker pool. The
// load is mixed read/write: every third chunk the worker also reads
// the session's stats back through the front. Because each session's
// stream replays in order from an empty configuration, the run ends
// with an exact per-session accounting check over the wire: every
// session must report exactly its share of updates applied and zero
// rejected — the fleet-level zero-lost-writes gate that `make
// soak-cluster` builds on.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/fuzz"
	"repro/internal/progs"
	"repro/internal/wire"
)

func runSwarm(c *client.Client, prefix, program string, sessions, n int, seed uint64, batch, singleEvery, workers, readEvery int, timeout time.Duration) error {
	per := n / sessions
	if per < 1 {
		return fmt.Errorf("-n %d spread over -sessions %d leaves no updates per session", n, sessions)
	}
	if workers > sessions {
		workers = sessions
	}
	p, err := progs.ByName(program)
	if err != nil {
		return err
	}
	local, err := p.Load()
	if err != nil {
		return err
	}
	names := make([]string, sessions)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%05d", prefix, i)
	}

	fmt.Printf("flayload: swarm of %d sessions x %d updates (%s) over %d workers\n",
		sessions, per, program, workers)
	start := time.Now()
	deadline := start.Add(timeout)
	var (
		sent, reads, retried, rejected atomic.Int64
		errOnce                        sync.Once
		failed                         atomic.Bool
		runErr                         error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		failed.Store(true)
	}

	// eachSession runs fn(i) for every session index from the worker
	// pool, stopping early once any worker has failed.
	eachSession := func(fn func(i int) error) {
		idx := make(chan int, sessions)
		for i := 0; i < sessions; i++ {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if failed.Load() {
						return
					}
					if time.Now().After(deadline) {
						fail(fmt.Errorf("deadline %v exceeded", timeout))
						return
					}
					if err := fn(i); err != nil {
						fail(fmt.Errorf("session %s: %w", names[i], err))
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: bring every session up so the whole fleet holds the full
	// population concurrently before any load lands on it.
	eachSession(func(i int) error {
		_, err := c.CreateSession(wire.CreateSessionRequest{Name: names[i], Catalog: program})
		for a := 0; err != nil && a < 20 && (client.IsStatus(err, 429) || client.IsStatus(err, 503)); a++ {
			time.Sleep(10 * time.Millisecond)
			_, err = c.CreateSession(wire.CreateSessionRequest{Name: names[i], Catalog: program})
		}
		return err
	})
	if runErr != nil {
		return runErr
	}
	created := time.Since(start)
	fmt.Printf("created   %d sessions in %v (%.0f/s)\n",
		sessions, created.Round(time.Millisecond), float64(sessions)/created.Seconds())

	// Phase 2: drive each session's own stream in declared order (so the
	// replay is valid and every write must be accepted), mixing in a
	// stats read every readEvery-th chunk.
	eachSession(func(i int) error {
		stream, err := fuzz.New(local.An, seed+uint64(i)).Stream(per)
		if err != nil {
			return err
		}
		for j, ch := range carve(stream, batch, singleEvery) {
			resp, retries, err := c.WriteRetry(names[i], ch.mode, ch.updates, 50, 5*time.Millisecond)
			if err != nil {
				return err
			}
			sent.Add(int64(len(ch.updates)))
			retried.Add(int64(retries))
			for _, d := range resp.Decisions {
				if d.Kind == "rejected" {
					rejected.Add(1)
				}
			}
			if readEvery > 0 && j%readEvery == readEvery-1 {
				if _, err := c.Stats(names[i]); err != nil {
					return err
				}
				reads.Add(1)
			}
		}
		return nil
	})
	if runErr != nil {
		return runErr
	}
	elapsed := time.Since(start)

	// Phase 3: exact accounting. Every session reports back through the
	// front; any shortfall is a lost accepted write somewhere in the
	// fleet, any reject means an in-order replay was refused.
	eachSession(func(i int) error {
		st, err := c.Stats(names[i])
		if err != nil {
			return err
		}
		if st.Updates != per || st.Rejected != 0 {
			return fmt.Errorf("applied %d/%d updates (%d rejected)", st.Updates, per, st.Rejected)
		}
		return nil
	})

	fmt.Printf("sent      %d updates + %d reads in %v (%.0f req/s), %d retries after 429\n",
		sent.Load(), reads.Load(), elapsed.Round(time.Millisecond),
		(float64(sent.Load())/float64(batch)+float64(reads.Load()))/elapsed.Seconds(), retried.Load())
	if cs := c.Conns(); cs != nil {
		total := cs.Dialed() + cs.Reused()
		reuse := float64(0)
		if total > 0 {
			reuse = 100 * float64(cs.Reused()) / float64(total)
		}
		fmt.Printf("conns     dialed=%d reused=%d (%.1f%% reuse)\n", cs.Dialed(), cs.Reused(), reuse)
	}
	if snap, err := c.Metrics(); err == nil {
		printHist(snap, "core.update_ns", "update")
		printHist(snap, "server.apply_ns", "apply")
	}
	if runErr != nil {
		return fmt.Errorf("verification: %w", runErr)
	}
	if rejected.Load() != 0 {
		return fmt.Errorf("%d in-order updates rejected", rejected.Load())
	}
	fmt.Printf("verify    %d sessions each applied exactly %d updates, 0 rejected\n", sessions, per)
	return nil
}
