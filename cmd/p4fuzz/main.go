// p4fuzz generates valid random control-plane entries for a program's
// tables (the role ControlPlaneSmith plays in the paper's burst
// experiments) and optionally replays them against the incremental
// specializer.
//
// Usage:
//
//	p4fuzz -program catalog:middleblock -table Ingress.acl_pre_ingress -n 20
//	p4fuzz -program my.p4 -table Ingress.route -n 1000 -replay
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/progs"
)

func main() {
	program := flag.String("program", "", "P4 source file or catalog:<name>")
	table := flag.String("table", "", "qualified table name (default: the program's burst table)")
	n := flag.Int("n", 10, "number of entries to generate")
	seed := flag.Uint64("seed", 1, "generator seed")
	replay := flag.Bool("replay", false, "apply the entries to the specializer and report decisions")
	flag.Parse()
	if *program == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		s   *core.Specializer
		err error
	)
	name := *program
	if cn, ok := strings.CutPrefix(*program, "catalog:"); ok {
		p, perr := progs.ByName(cn)
		if perr != nil {
			fatal("%v", perr)
		}
		if *table == "" {
			*table = p.BurstTable
		}
		s, err = p.Load()
		name = p.Name
	} else {
		data, rerr := os.ReadFile(*program)
		if rerr != nil {
			fatal("%v", rerr)
		}
		s, err = core.NewFromSource(name, string(data), core.Options{})
	}
	if err != nil {
		fatal("%v", err)
	}
	if *table == "" {
		fatal("-table is required for non-catalog programs")
	}

	g := fuzz.New(s.An, *seed)
	ups, err := g.Updates(*table, *n)
	if err != nil {
		fatal("%v", err)
	}

	if !*replay {
		for i, u := range ups {
			e := u.Entry
			var parts []string
			for _, m := range e.Matches {
				switch {
				case m.PrefixLen > 0:
					parts = append(parts, fmt.Sprintf("%s/%d", m.Value, m.PrefixLen))
				case m.Mask.W > 0:
					parts = append(parts, fmt.Sprintf("%s &&& %s", m.Value, m.Mask))
				default:
					parts = append(parts, m.Value.String())
				}
			}
			var params []string
			for _, p := range e.Params {
				params = append(params, p.String())
			}
			fmt.Printf("%4d: prio=%-5d [%s] -> %s(%s)\n",
				i, e.Priority, strings.Join(parts, ", "), e.Action, strings.Join(params, ", "))
		}
		return
	}

	t0 := time.Now()
	forwarded, recompiled, rejected := 0, 0, 0
	for _, u := range ups {
		switch s.Apply(u).Kind {
		case core.Forward:
			forwarded++
		case core.Recompile:
			recompiled++
		default:
			rejected++
		}
	}
	fmt.Printf("%s/%s: %d generated updates in %v — %d forwarded, %d recompiled, %d rejected\n",
		name, *table, *n, time.Since(t0).Round(time.Millisecond), forwarded, recompiled, rejected)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p4fuzz: "+format+"\n", args...)
	os.Exit(1)
}
