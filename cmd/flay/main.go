// flay is the command-line front end to goflay's incremental
// specializer.
//
// Usage:
//
//	flay analyze    (<file.p4> | catalog:<name>)   print analysis stats
//	flay specialize (<file.p4> | catalog:<name>)   print the specialized program
//	flay compile    (<file.p4> | catalog:<name>)   lower onto the Tofino model
//	flay demo       catalog:<name>                 replay the representative config
//	flay list                                      list catalog programs
//
// Flags (before the subcommand arguments):
//
//	-skip-parser        skip parser analysis
//	-threshold N        overapproximation threshold (-1 = precise mode)
//	-target tofino|bmv2 device backend for compile
//	-representative     install the catalog entry's representative config first
//	-explain TABLE      print the decision-diagram explanation of TABLE's points
//	-audit FILE         dump the decision audit trail as JSONL ("-" = stdout)
//	-snapshot FILE      checkpoint the engine's warm state to FILE afterwards
//	-restore FILE       warm-restart from a snapshot instead of opening a source
//
// With -restore the positional source argument is omitted: the
// snapshot embeds the program, the installed configuration, the verdict
// map and the warm query cache, so e.g.
//
//	flay -representative -snapshot scion.snap demo catalog:scion
//	flay -restore scion.snap specialize
//
// resumes the stream without re-running the initial specialization
// pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	goflay "repro"
	"repro/internal/core"
	"repro/internal/progs"
)

func main() {
	skipParser := flag.Bool("skip-parser", false, "skip parser analysis")
	threshold := flag.Int("threshold", 0, "overapproximation threshold (0 = default 100, negative = precise)")
	target := flag.String("target", "tofino", "device backend (tofino|bmv2)")
	representative := flag.Bool("representative", false, "install the catalog representative configuration first")
	explainTable := flag.String("explain", "", "print the decision-diagram explanation of every program point the named table influences")
	auditPath := flag.String("audit", "", `dump the decision audit trail as JSONL to FILE ("-" = stdout)`)
	snapshotPath := flag.String("snapshot", "", "checkpoint the engine's warm state to FILE after the command")
	restorePath := flag.String("restore", "", "warm-restart from a snapshot FILE instead of opening a source")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	cmd := args[0]
	if cmd == "list" {
		for _, p := range progs.Catalog() {
			fmt.Printf("catalog:%-14s target=%-7s", p.Name, p.Target)
			if p.PaperStatements > 0 {
				fmt.Printf(" paper-stmts=%-4d", p.PaperStatements)
			} else {
				fmt.Printf("%17s", "")
			}
			if p.Summary != "" {
				fmt.Printf(" %s", p.Summary)
			}
			fmt.Println()
		}
		return
	}
	var (
		name         string
		source       string
		catalogEntry *progs.Program
	)
	switch {
	case *restorePath != "":
		// The snapshot embeds the program; no source argument.
		if len(args) != 1 {
			usage()
			os.Exit(2)
		}
		name = *restorePath
	case len(args) == 2:
		name, source, catalogEntry = loadSource(args[1])
	default:
		usage()
		os.Exit(2)
	}
	opts := []goflay.Option{goflay.WithOverapproxThreshold(*threshold)}
	if *skipParser || (catalogEntry != nil && catalogEntry.SkipParser) {
		opts = append(opts, goflay.WithSkipParser())
	}
	var trail *goflay.AuditTrail
	if *auditPath != "" {
		trail = goflay.NewAuditTrail(0)
		opts = append(opts, goflay.WithAudit(trail))
	}
	switch *target {
	case "tofino":
		opts = append(opts, goflay.WithTarget(goflay.TargetTofino))
	case "bmv2":
		opts = append(opts, goflay.WithTarget(goflay.TargetBMv2))
	default:
		fatal("unknown target %q", *target)
	}

	t0 := time.Now()
	var pipe *goflay.Pipeline
	var err error
	if *restorePath != "" {
		data, rerr := os.ReadFile(*restorePath)
		if rerr != nil {
			fatal("%v", rerr)
		}
		pipe, err = goflay.Restore(data, opts...)
	} else {
		pipe, err = goflay.Open(name, source, opts...)
	}
	if err != nil {
		fatal("%v", err)
	}
	openTime := time.Since(t0)

	if *representative {
		if catalogEntry == nil {
			fatal("-representative requires a catalog: program")
		}
		for _, u := range catalogEntry.Representative() {
			if d := pipe.Apply(u); d.Kind == goflay.Rejected {
				fatal("representative config rejected: %v", d.Err)
			}
		}
	}

	switch cmd {
	case "analyze":
		st := pipe.Statistics()
		fmt.Printf("program:             %s\n", name)
		fmt.Printf("tables:              %d (%s)\n", len(pipe.Tables()), strings.Join(pipe.Tables(), ", "))
		fmt.Printf("program points:      %d\n", st.Points)
		fmt.Printf("data-plane analysis: %v\n", st.AnalysisTime.Round(time.Microsecond))
		fmt.Printf("preprocessing:       %v\n", st.PreprocessTime.Round(time.Microsecond))
		fmt.Printf("open (total):        %v\n", openTime.Round(time.Microsecond))
	case "specialize":
		fmt.Print(pipe.SpecializedSource())
	case "compile":
		full, err := pipe.CompileOriginal()
		if err != nil {
			fatal("%v", err)
		}
		spec, err := pipe.Compile()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("original:    %s\n", full)
		fmt.Printf("specialized: %s\n", spec)
	case "demo":
		if catalogEntry == nil {
			fatal("demo requires a catalog: program")
		}
		runDemo(pipe, catalogEntry)
	default:
		usage()
		os.Exit(2)
	}

	if *explainTable != "" {
		if err := runExplain(pipe, *explainTable); err != nil {
			fatal("%v", err)
		}
	}
	if *auditPath != "" {
		if err := dumpAudit(pipe.Audit(), *auditPath); err != nil {
			fatal("%v", err)
		}
	}
	if *snapshotPath != "" {
		data, err := pipe.Snapshot()
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*snapshotPath, data, 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "flay: snapshot (%d bytes) written to %s\n", len(data), *snapshotPath)
	}
}

// runExplain prints, for every program point the named table
// influences, the verdict and the decision-diagram path that produced
// it: the predicates tested along the witness assignment, the branch
// taken at each, and the witness itself.
func runExplain(pipe *goflay.Pipeline, table string) error {
	ids, err := pipe.Points(table)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d program points\n", table, len(ids))
	for _, id := range ids {
		ex, err := pipe.Explain(table, id)
		if err != nil {
			return err
		}
		fmt.Printf("point #%d %s [%s]: %s", ex.Point, ex.Kind, ex.Query, ex.Verdict)
		if ex.Value != "" {
			fmt.Printf(" = %s", ex.Value)
		}
		fmt.Printf(" (%s, epoch %d)\n", ex.Source, ex.Epoch)
		for _, st := range ex.Steps {
			branch := "false"
			if st.Taken {
				branch = "true"
			}
			fmt.Printf("  %-40s -> %s\n", st.Pred, branch)
		}
		if len(ex.Witness) > 0 {
			names := make([]string, 0, len(ex.Witness))
			for n := range ex.Witness {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("  witness:")
			for _, n := range names {
				fmt.Printf(" @%s@=%s", n, ex.Witness[n])
			}
			fmt.Println()
		}
	}
	return nil
}

// dumpAudit writes the pipeline's decision audit trail as JSONL — one
// record per control-plane update the engine decided.
func dumpAudit(trail *goflay.AuditTrail, path string) error {
	if path == "-" {
		return trail.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trail.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flay: audit trail (%d records) written to %s\n", trail.Len(), path)
	return nil
}

func runDemo(pipe *goflay.Pipeline, p *progs.Program) {
	if p.Representative == nil {
		fatal("catalog:%s has no representative configuration", p.Name)
	}
	fmt.Printf("replaying the representative configuration for %s...\n", p.Name)
	forwarded, recompiled := 0, 0
	t0 := time.Now()
	for _, u := range p.Representative() {
		switch pipe.Apply(u).Kind {
		case goflay.Forward:
			forwarded++
		case goflay.Recompile:
			recompiled++
		case core.Rejected:
			fatal("update rejected")
		}
	}
	fmt.Printf("%d updates in %v: %d forwarded, %d recompiled\n",
		forwarded+recompiled, time.Since(t0).Round(time.Millisecond), forwarded, recompiled)
	rep, err := pipe.Compile()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("specialized implementation: %s\n", rep)
}

func loadSource(arg string) (string, string, *progs.Program) {
	if n, ok := strings.CutPrefix(arg, "catalog:"); ok {
		p, err := progs.ByName(n)
		if err != nil {
			fatal("%v (try `flay list`)", err)
		}
		return p.Name, p.Source, p
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		fatal("%v", err)
	}
	return arg, string(data), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flay: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: flay [flags] <analyze|specialize|compile|demo> (<file.p4> | catalog:<name>)
       flay -restore FILE [flags] <analyze|specialize|compile>
       flay list

flags:
  -skip-parser      skip parser analysis
  -threshold N      overapproximation threshold (negative = precise mode)
  -target T         tofino (default) or bmv2
  -representative   install the catalog representative configuration first
  -explain TABLE    print the decision-diagram explanation of TABLE's points
  -audit FILE       dump the decision audit trail as JSONL ("-" = stdout)
  -snapshot FILE    checkpoint the engine's warm state to FILE afterwards
  -restore FILE     warm-restart from a snapshot (no source argument)
`)
}
