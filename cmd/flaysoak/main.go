// flaysoak is the long-horizon churn soak harness for flayd: it drives
// the trace-driven churn patterns (internal/fuzz) through live sessions
// for every production-shaped catalog program, in repeated cycles that
// return each session to its baseline configuration (stream + drain),
// and asserts the properties a specializing daemon must hold over
// millions of updates:
//
//   - flat memory: the server's heap watermark (server.heap_alloc_bytes,
//     sampled at every -report scrape) must not creep — after a warm-up,
//     the max of the second half of samples must stay within
//     -mem-growth-max of the max of the first half;
//   - stable p99: interval p99s of client-observed write latency must
//     not degrade — the worst of the last intervals must stay within
//     -p99-growth-max of the median interval p99;
//   - audit sequence continuity: audit records polled with ?since= are
//     strictly contiguous, and any gap between polls is accounted for by
//     ring eviction (Dropped), never silent loss; the final audit total
//     must equal the engine's update count;
//   - soundness: zero rejected updates, zero unsound degraded verdicts,
//     and every pattern's steady-state invariant verified over the wire
//     from the session's live entry counts after every cycle;
//   - warm restarts: once per pattern the session is snapshotted
//     mid-churn (off its baseline) and restored locally; the snapshot
//     must capture a prefix-consistent epoch — restore succeeds, the
//     restored counters partition exactly, and update/entry counts
//     match the server's published state at the snapshot boundary;
//   - live packet path: sessions run exec-enabled, and every cycle a
//     wire /exec burst lands mid-churn — one result per frame, with the
//     reported execution epoch never going backwards, so the atomic
//     image hot-swap holds up over the whole soak horizon.
//
// The run is time-scaled: -updates N is the per-program update budget,
// so CI smoke runs finish in seconds (make soak-churn-smoke) while
// SOAK_CHURN_UPDATES=millions unlocks an hours-long soak with the same
// assertions (see EXPERIMENTS.md, "churn soak").
//
// Usage:
//
//	flaysoak [flags]
//
//	-addr HOST:PORT      daemon address (default 127.0.0.1:9444)
//	-programs LIST       catalog programs to soak (default nat44,l4lb,tunnelterm)
//	-patterns LIST       churn patterns per cycle (default all four)
//	-updates N           per-program update budget, drain included (default 24000)
//	-cycle N             updates per pattern per cycle (default 1000)
//	-seed N              base seed; each (cycle, pattern) derives its own
//	-report DUR          heap/latency sampling interval (default 2s)
//	-mem-growth-max F    heap watermark growth factor gate (default 1.5)
//	-p99-growth-max F    interval-p99 growth factor gate (default 4.0)
//	-timeout DUR         overall run deadline (default 30m)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	goflay "repro"
	"repro/internal/client"
	"repro/internal/controlplane"
	"repro/internal/fuzz"
	"repro/internal/progs"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "flaysoak: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flaysoak", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9444", "daemon address")
	programsCSV := fs.String("programs", "nat44,l4lb,tunnelterm", "catalog programs to soak")
	patternsCSV := fs.String("patterns", "diurnal,flapstorm,acl-rollout,gc", "churn patterns per cycle")
	updates := fs.Int("updates", 24000, "per-program update budget (drain updates included)")
	cycle := fs.Int("cycle", 1000, "updates per pattern per cycle")
	seed := fs.Uint64("seed", 1, "base seed; each (cycle, pattern) derives its own")
	report := fs.Duration("report", 2*time.Second, "heap/latency sampling interval")
	memGrowthMax := fs.Float64("mem-growth-max", 1.5, "heap watermark growth factor gate")
	p99GrowthMax := fs.Float64("p99-growth-max", 4.0, "interval-p99 growth factor gate")
	timeout := fs.Duration("timeout", 30*time.Minute, "overall run deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *updates <= 0 || *cycle < 8 {
		return fmt.Errorf("-updates must be positive and -cycle at least 8")
	}
	var kinds []fuzz.PatternKind
	for _, name := range strings.Split(*patternsCSV, ",") {
		k, err := fuzz.ParsePattern(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		kinds = append(kinds, k)
	}
	var programs []*progs.Program
	for _, name := range strings.Split(*programsCSV, ",") {
		p, err := progs.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		programs = append(programs, p)
	}

	c := client.New("http://" + *addr)
	if err := c.WaitReady(10 * time.Second); err != nil {
		return err
	}

	deadline := time.Now().Add(*timeout)
	soak := &soakRun{c: c}

	// One driver per program, all concurrent: flayd soaks under the
	// combined churn of every session, the way a production daemon would.
	var wg sync.WaitGroup
	for _, p := range programs {
		wg.Add(1)
		go func(p *progs.Program) {
			defer wg.Done()
			soak.drive(p, kinds, *updates, *cycle, *seed, deadline)
		}(p)
	}

	// Sampler: scrape the daemon's heap gauge and fold the drained write
	// latencies into one interval p99 per tick, for the whole run.
	samplerDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		tick := time.NewTicker(*report)
		defer tick.Stop()
		for {
			select {
			case <-samplerDone:
				soak.sample() // final sample so short runs still get data
				return
			case <-tick.C:
				soak.sample()
			}
		}
	}()
	start := time.Now()
	wg.Wait()
	close(samplerDone)
	<-samplerStopped
	elapsed := time.Since(start)

	fmt.Printf("flaysoak: %d updates across %d sessions in %v (%.0f updates/s), %d packets executed mid-churn\n",
		soak.sent, len(programs), elapsed.Round(time.Millisecond),
		float64(soak.sent)/elapsed.Seconds(), soak.executed)

	soak.checkMemory(*memGrowthMax)
	soak.checkLatency(*p99GrowthMax)

	if len(soak.failures) > 0 {
		for _, f := range soak.failures {
			fmt.Printf("FAIL %s\n", f)
		}
		return fmt.Errorf("%d soak assertions failed", len(soak.failures))
	}
	fmt.Println("PASS all soak assertions held")
	return nil
}

// soakRun aggregates the run's shared state: client-observed write
// latencies (drained into interval p99s by the sampler), heap samples,
// the global update count, and collected assertion failures.
type soakRun struct {
	c *client.Client

	mu        sync.Mutex
	latencies []time.Duration // since the last sample
	heap      []int64         // server.heap_alloc_bytes per tick
	p99s      []time.Duration // interval p99s (qualified intervals only)
	sent      int64
	executed  int64 // packets run through /exec mid-churn
	failures  []string
}

func (s *soakRun) fail(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures = append(s.failures, fmt.Sprintf(format, args...))
}

func (s *soakRun) recordWrite(d time.Duration, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies = append(s.latencies, d)
	s.sent += int64(n)
}

// qualified is the minimum writes an interval needs for its p99 to be
// meaningful enough to gate on.
const qualified = 20

func (s *soakRun) sample() {
	snap, err := s.c.Metrics()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.heap = append(s.heap, snap.Gauges["server.heap_alloc_bytes"])
	}
	if len(s.latencies) >= qualified {
		s.p99s = append(s.p99s, percentile(s.latencies, 0.99))
	}
	s.latencies = s.latencies[:0]
}

func percentile(ds []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration{}, ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// drive soaks one program: repeated cycles of every pattern, each
// followed by its drain, with the steady-state invariant and audit
// continuity checked per pattern.
func (s *soakRun) drive(p *progs.Program, kinds []fuzz.PatternKind, budget, cycleLen int, seed uint64, deadline time.Time) {
	session := "soak-" + p.Name
	if _, err := s.c.CreateSession(wire.CreateSessionRequest{Name: session, Catalog: p.Name, Exec: true}); err != nil {
		s.fail("%s: creating session: %v", session, err)
		return
	}
	local, err := p.Load()
	if err != nil {
		s.fail("%s: loading locally: %v", session, err)
		return
	}
	info, err := s.c.Session(session)
	if err != nil {
		s.fail("%s: %v", session, err)
		return
	}
	baseline := info.Entries[p.BurstTable]
	lastSeen := 0
	sent := 0
	var lastEpoch uint64
	for cyc := 0; sent < budget; cyc++ {
		for _, kind := range kinds {
			if sent >= budget {
				break
			}
			if time.Now().After(deadline) {
				s.fail("%s: run deadline exceeded after %d updates", session, sent)
				return
			}
			cs, err := fuzz.Churn(local.An, fuzz.ChurnSpec{
				Kind: kind, Table: p.BurstTable, Updates: cycleLen,
				Seed: seed + uint64(cyc)*uint64(len(kinds)) + uint64(kind),
			})
			if err != nil {
				s.fail("%s: generating %s cycle %d: %v", session, kind, cyc, err)
				return
			}
			for _, b := range cs.Batches() {
				if !s.write(session, b) {
					return
				}
			}
			info, err := s.c.Session(session)
			if err != nil {
				s.fail("%s: %v", session, err)
				return
			}
			if err := cs.CheckInvariant(info.Entries[p.BurstTable] - baseline); err != nil {
				s.fail("%s cycle %d: %v", session, cyc, err)
				return
			}
			// Mid-churn restore gate: the session is off its baseline
			// here (the cycle's live entries are installed, the drain
			// has not run), the state a warm restart would actually
			// resume from. Once per pattern is enough to gate on.
			if cyc == 0 && !s.restoreGate(session, p) {
				return
			}
			// Packet-path probe, also mid-churn: the hot-swapped image
			// must keep answering, one result per frame, epoch monotone.
			if !s.execProbe(session, &lastEpoch) {
				return
			}
			// Drain back to baseline so live state (and the heap a
			// leak-free engine needs for it) is flat across cycles.
			drain := cs.Drain()
			for i := 0; i < len(drain); i += 64 {
				if !s.write(session, drain[i:min(i+64, len(drain))]) {
					return
				}
			}
			sent += len(cs.Updates) + len(drain)
			if lastSeen, err = s.auditCheck(session, lastSeen); err != nil {
				s.fail("%s cycle %d: %v", session, cyc, err)
				return
			}
		}
	}

	// End-of-soak ledger: baseline state, gapless audit transcript of
	// every update, zero rejects, zero unsound degraded verdicts.
	info, err = s.c.Session(session)
	if err != nil {
		s.fail("%s: %v", session, err)
		return
	}
	if got := info.Entries[p.BurstTable]; got != baseline {
		s.fail("%s: %d entries after soak, baseline was %d", session, got, baseline)
	}
	st, err := s.c.Stats(session)
	if err != nil {
		s.fail("%s: %v", session, err)
		return
	}
	if st.Rejected != 0 {
		s.fail("%s: %d rejected updates", session, st.Rejected)
	}
	if st.UnsoundDegraded != 0 {
		s.fail("%s: %d unsound degraded verdicts", session, st.UnsoundDegraded)
	}
	if info.AuditTotal != int64(st.Updates) {
		s.fail("%s: audit total %d, engine processed %d", session, info.AuditTotal, st.Updates)
	}
	if int64(lastSeen) != info.AuditTotal {
		s.fail("%s: last audited seq %d, audit total %d", session, lastSeen, info.AuditTotal)
	}
	fmt.Printf("flaysoak: %s done: %d updates, audit seq 1..%d gapless\n", session, st.Updates, lastSeen)
}

// restoreGate snapshots the session mid-churn (live state off its
// baseline) and restores it locally: the snapshot must capture a
// prefix-consistent epoch. Restore must succeed; the restored engine
// must publish an epoch whose counters partition exactly; and because
// this client is the session's only writer, the restored update count
// and live entry count must equal the server's published state at the
// snapshot boundary — never a torn or stale cut.
func (s *soakRun) restoreGate(session string, p *progs.Program) bool {
	resp, err := s.c.Snapshot(session)
	if err != nil {
		s.fail("%s: mid-churn snapshot: %v", session, err)
		return false
	}
	info, err := s.c.Session(session)
	if err != nil {
		s.fail("%s: %v", session, err)
		return false
	}
	pipe, err := goflay.Restore(resp.Snapshot)
	if err != nil {
		s.fail("%s: mid-churn snapshot does not restore: %v", session, err)
		return false
	}
	defer pipe.Close()
	st := pipe.Statistics()
	if st.Updates != st.Forwarded+st.Recompilations+st.Rejected {
		s.fail("%s: restored counters do not partition: %+v", session, st)
		return false
	}
	if pipe.Epoch() == 0 {
		s.fail("%s: restored engine published no epoch", session)
		return false
	}
	if st.Updates != info.Stats.Updates {
		s.fail("%s: restored engine saw %d updates, server reports %d (torn snapshot boundary)",
			session, st.Updates, info.Stats.Updates)
		return false
	}
	if got, want := pipe.Entries(p.BurstTable), info.Entries[p.BurstTable]; got != want {
		s.fail("%s: restored %s has %d entries, server reports %d",
			session, p.BurstTable, got, want)
		return false
	}
	return true
}

// execProbe runs a small fixed burst through the session's wire /exec
// endpoint while the churn writer is mid-cycle. The endpoint bypasses
// the write dispatcher, so it must always answer — one result per
// frame — and the execution epoch it reports must never go backwards
// across probes: an image hot-swap that lost the image or resurrected
// a stale epoch would show up here over the soak horizon.
func (s *soakRun) execProbe(session string, lastEpoch *uint64) bool {
	frames := [][]byte{
		{0x02, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
			0x08, 0x00,
			0x45, 0x00, 0x00, 0x20, 0x00, 0x01, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
			0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x01, 0x02,
			0x12, 0x34, 0x56, 0x78, 0x00, 0x0c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
		{0xde, 0xad, 0xbe, 0xef},
		{},
	}
	resp, err := s.c.ExecBytes(session, frames, []uint16{1, 2, 3})
	if err != nil {
		s.fail("%s: mid-churn exec: %v", session, err)
		return false
	}
	if len(resp.Results) != len(frames) {
		s.fail("%s: exec returned %d results for %d frames", session, len(resp.Results), len(frames))
		return false
	}
	if resp.Epoch < *lastEpoch {
		s.fail("%s: exec epoch went backwards: %d after %d", session, resp.Epoch, *lastEpoch)
		return false
	}
	*lastEpoch = resp.Epoch
	s.mu.Lock()
	s.executed += int64(len(frames))
	s.mu.Unlock()
	return true
}

// write sends one ordered batch, honoring backpressure, and records its
// latency. Any error or rejected verdict fails the soak.
func (s *soakRun) write(session string, b []*controlplane.Update) bool {
	t0 := time.Now()
	resp, _, err := s.c.WriteRetryDeadline(session, wire.ModeBatch, b, 0, 50, 5*time.Millisecond)
	if err != nil {
		s.fail("%s: write: %v", session, err)
		return false
	}
	s.recordWrite(time.Since(t0), len(b))
	for i, d := range resp.Decisions {
		if d.Kind == "rejected" {
			s.fail("%s: update %d rejected: %s", session, i, d.Error)
			return false
		}
	}
	return true
}

// auditCheck polls ?since= and verifies sequence continuity: records in
// a window are strictly contiguous, windows never replay, and a gap
// between windows is legal only when the ring evicted records (Dropped
// accounts for it). Returns the new high-water seq.
func (s *soakRun) auditCheck(session string, lastSeen int) (int, error) {
	resp, err := s.c.Audit(session, lastSeen)
	if err != nil {
		return 0, err
	}
	recs := resp.Records
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			return 0, fmt.Errorf("audit seq gap inside window: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	if len(recs) == 0 {
		return lastSeen, nil
	}
	if recs[0].Seq <= lastSeen {
		return 0, fmt.Errorf("audit replayed seq %d at high water %d", recs[0].Seq, lastSeen)
	}
	if recs[0].Seq != lastSeen+1 && resp.Dropped == 0 {
		return 0, fmt.Errorf("audit gap %d..%d with no ring eviction", lastSeen+1, recs[0].Seq-1)
	}
	return recs[len(recs)-1].Seq, nil
}

// checkMemory enforces the flat-memory gate on the heap watermark. The
// first two samples are warm-up; with fewer than six samples overall the
// check is informational (smoke runs are too short to gate on).
func (s *soakRun) checkMemory(growthMax float64) {
	heap := s.heap
	if len(heap) < 6 {
		fmt.Printf("flaysoak: %d heap samples (<6), flat-memory gate informational only\n", len(heap))
		return
	}
	steady := heap[2:]
	half := len(steady) / 2
	firstMax, secondMax := int64(0), int64(0)
	for _, h := range steady[:half] {
		firstMax = max(firstMax, h)
	}
	for _, h := range steady[half:] {
		secondMax = max(secondMax, h)
	}
	fmt.Printf("flaysoak: heap watermark %0.1fMB -> %0.1fMB over %d samples (gate %.2fx)\n",
		float64(firstMax)/1e6, float64(secondMax)/1e6, len(steady), growthMax)
	if float64(secondMax) > float64(firstMax)*growthMax {
		s.fail("heap watermark grew %0.1fMB -> %0.1fMB (> %.2fx): not flat",
			float64(firstMax)/1e6, float64(secondMax)/1e6, growthMax)
	}
}

// checkLatency enforces p99 stability: the worst of the last three
// interval p99s must stay within growthMax of the median interval p99.
// Fewer than six qualified intervals is informational only.
func (s *soakRun) checkLatency(growthMax float64) {
	p99s := s.p99s
	if len(p99s) < 6 {
		fmt.Printf("flaysoak: %d qualified latency intervals (<6), p99 gate informational only\n", len(p99s))
		return
	}
	sorted := append([]time.Duration{}, p99s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	worstTail := time.Duration(0)
	for _, p := range p99s[len(p99s)-3:] {
		worstTail = max(worstTail, p)
	}
	fmt.Printf("flaysoak: interval p99 median=%v tail-max=%v over %d intervals (gate %.2fx)\n",
		median, worstTail, len(p99s), growthMax)
	if float64(worstTail) > float64(median)*growthMax {
		s.fail("p99 degraded: tail max %v vs median %v (> %.2fx)", worstTail, median, growthMax)
	}
}
