package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func TestParseShard(t *testing.T) {
	full := "name=shard-a,addr=http://h1:9444,bin=h1:9445,standby=http://h2:9444,standby-bin=h2:9445"
	sc, err := parseShard(full)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "shard-a" || sc.Addr != "http://h1:9444" || sc.BinAddr != "h1:9445" ||
		sc.StandbyAddr != "http://h2:9444" || sc.StandbyBin != "h2:9445" {
		t.Fatalf("parsed %+v", sc)
	}

	if sc, err := parseShard("name=a,addr=http://h:1"); err != nil || sc.BinAddr != "" {
		t.Fatalf("minimal spec: %+v, %v", sc, err)
	}

	for spec, wantErr := range map[string]string{
		"name=a":                "needs name= and addr=",
		"addr=http://h:1":       "needs name= and addr=",
		"name=a,addr=h,port=9":  `unknown field "port"`,
		"name=a,addr=h,garbage": "not key=value",
	} {
		if _, err := parseShard(spec); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("parseShard(%q) = %v, want %q", spec, err, wantErr)
		}
	}
}

// TestRunFlagErrors pins the startup validation paths that never reach
// a listener.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                              // no shards
		{"-shard", "name=a"},            // spec missing addr
		{"-shard", "name=a,addr=h,x=y"}, // unknown field
		{"-addr", "256.0.0.1:0", "-shard", "name=a,addr=http://h:1"}, // bad listen addr
	} {
		if err := run(context.Background(), args, os.Stderr); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
