// flayfront is the fleet front door: it consistent-hashes session
// names onto a set of flayd shards, proxies both the HTTP/JSON API and
// the binary protocol onto the owning shard, aggregates per-shard
// /metrics into one fleet view, and — when a shard is configured with
// a standby — health-probes the actives and promotes the standby when
// one dies.
//
// Usage:
//
//	flayfront -addr HOST:PORT [-bin-addr HOST:PORT] -shard SPEC [-shard SPEC ...]
//
// Each -shard SPEC is a comma-separated list of key=value fields:
//
//	name=shard-a,addr=http://h1:9444[,bin=h1:9445][,standby=http://h2:9444][,standby-bin=h2:9445]
//
// name is the shard's stable ring identity: failover swaps the address
// behind it, so session placement never changes. Flags:
//
//	-addr HOST:PORT      HTTP listen address (default 127.0.0.1:9440)
//	-bin-addr HOST:PORT  binary-protocol listen address (empty disables)
//	-probe DUR           health-probe cadence (0 disables auto-failover)
//	-fail-after N        consecutive probe failures declaring a shard dead
//	-vnodes N            virtual nodes per shard on the hash ring
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// shardSpecs collects repeated -shard flags.
type shardSpecs []string

func (s *shardSpecs) String() string     { return strings.Join(*s, " ") }
func (s *shardSpecs) Set(v string) error { *s = append(*s, v); return nil }

// parseShard decodes one -shard SPEC into a ShardConfig.
func parseShard(spec string) (cluster.ShardConfig, error) {
	var sc cluster.ShardConfig
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return sc, fmt.Errorf("field %q is not key=value", field)
		}
		switch k {
		case "name":
			sc.Name = v
		case "addr":
			sc.Addr = v
		case "bin":
			sc.BinAddr = v
		case "standby":
			sc.StandbyAddr = v
		case "standby-bin":
			sc.StandbyBin = v
		default:
			return sc, fmt.Errorf("unknown field %q", k)
		}
	}
	if sc.Name == "" || sc.Addr == "" {
		return sc, fmt.Errorf("shard spec needs name= and addr=")
	}
	return sc, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "flayfront: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("flayfront", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9440", "HTTP listen address")
	binAddr := fs.String("bin-addr", "", "binary-protocol listen address (empty disables)")
	probe := fs.Duration("probe", 250*time.Millisecond, "health-probe cadence (0 disables auto-failover)")
	failAfter := fs.Int("fail-after", 3, "consecutive probe failures declaring a shard dead")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	var specs shardSpecs
	fs.Var(&specs, "shard", "shard spec name=...,addr=...[,bin=...][,standby=...][,standby-bin=...] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("at least one -shard is required")
	}
	logger := log.New(logw, "flayfront: ", log.LstdFlags)

	front := cluster.New(cluster.Config{
		Vnodes:        *vnodes,
		ProbeInterval: *probe,
		FailAfter:     *failAfter,
		Logf:          logger.Printf,
	})
	for _, spec := range specs {
		sc, err := parseShard(spec)
		if err != nil {
			return fmt.Errorf("-shard %q: %w", spec, err)
		}
		if err := front.AddShard(sc); err != nil {
			return err
		}
		logger.Printf("shard %s at %s (standby: %s)", sc.Name, sc.Addr, orNone(sc.StandbyAddr))
	}
	front.Start()
	defer front.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: front}
	logger.Printf("fronting %d shards on http://%s", len(specs), ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	var binLn net.Listener
	if *binAddr != "" {
		binLn, err = net.Listen("tcp", *binAddr)
		if err != nil {
			return err
		}
		logger.Printf("binary protocol on %s", binLn.Addr())
		go func() {
			if err := front.ServeBin(binLn); err != nil {
				logger.Printf("binary listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining")
	if binLn != nil {
		binLn.Close()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained; exiting")
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
