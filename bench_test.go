// Benchmarks regenerating the paper's tables and figures. One bench per
// experiment (DESIGN.md §3); cmd/flaybench prints the same data as
// paper-style tables.
package goflay_test

import (
	"fmt"
	"testing"
	"time"

	goflay "repro"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/devcompiler"
	"repro/internal/p4/ast"
	"repro/internal/p4/parser"
	"repro/internal/p4/typecheck"
	"repro/internal/progs"
	"repro/internal/trace"
)

// BenchmarkTable1CompileFromScratch measures the from-scratch device
// compile (frontend + RMT allocation) per catalog program and reports
// the modelled bf-p4c-equivalent seconds (Tbl. 1).
func BenchmarkTable1CompileFromScratch(b *testing.B) {
	for _, name := range []string{"switch", "scion", "beaucoup", "accturbo", "dta", "middleblock", "dash"} {
		p, err := progs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			prog, err := parser.Parse(p.Name, p.Source)
			if err != nil {
				b.Fatal(err)
			}
			comp := devcompiler.New(p.Target)
			var model float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := comp.Compile(prog)
				if err != nil {
					b.Fatal(err)
				}
				model = res.ModelSeconds
			}
			b.ReportMetric(model, "model-s")
			if p.PaperCompileSeconds > 0 {
				b.ReportMetric(p.PaperCompileSeconds, "paper-s")
			}
		})
	}
}

// BenchmarkTable2DataPlaneAnalysis measures the one-time data-plane
// analysis (Tbl. 2 "Data-plane analysis time").
func BenchmarkTable2DataPlaneAnalysis(b *testing.B) {
	for _, name := range []string{"scion", "switch", "middleblock", "dash"} {
		p, err := progs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			prog, err := parser.Parse(p.Name, p.Source)
			if err != nil {
				b.Fatal(err)
			}
			info, err := typecheck.Check(prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dataplane.Analyze(prog, info, dataplane.Options{SkipParser: p.SkipParser}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2UpdateAnalysis measures single-update analysis time
// under the representative configuration (Tbl. 2 "Update analysis
// time").
func BenchmarkTable2UpdateAnalysis(b *testing.B) {
	for _, name := range []string{"scion", "switch", "middleblock", "dash"} {
		p, err := progs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			s, err := p.Load()
			if err != nil {
				b.Fatal(err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var u *controlplane.Update
				switch name {
				case "scion":
					u = progs.ScionBurstEntry(10000 + i)
				case "middleblock":
					u = progs.MiddleblockACLEntry(10000 + i)
				default:
					// Alternate insert/delete of one probe entry so the
					// configuration stays small.
					u = benchProbe(s, p.BurstTable, i)
				}
				if d := s.Apply(u); d.Kind == core.Rejected {
					b.Fatalf("update rejected: %v", d.Err)
				}
			}
		})
	}
}

// benchProbe alternates insert/delete of a fixed entry.
func benchProbe(s *core.Specializer, table string, i int) *controlplane.Update {
	ti := s.An.Tables[table]
	e := &controlplane.TableEntry{Priority: 424242}
	for k, w := range ti.KeyWidths {
		m := controlplane.FieldMatch{Kind: ti.KeyMatch[k], Value: goflay.NewBV(w, 0x3F)}
		switch ti.KeyMatch[k] {
		case controlplane.MatchTernary:
			m.Mask = goflay.NewBV2(w, ^uint64(0), ^uint64(0))
		case controlplane.MatchLPM:
			m.PrefixLen = int(w)
		}
		e.Matches = append(e.Matches, m)
	}
	for _, ai := range ti.Actions {
		if ai.Name == "NoAction" {
			continue
		}
		e.Action = ai.Name
		for _, pw := range ai.ParamWidths {
			e.Params = append(e.Params, goflay.NewBV(pw, 1))
		}
		break
	}
	kind := controlplane.InsertEntry
	if i%2 == 1 {
		kind = controlplane.DeleteEntry
	}
	return &controlplane.Update{Kind: kind, Table: table, Entry: e}
}

// BenchmarkTable3UpdateScaling measures one update's analysis time with
// N entries already installed in the middleblock Pre-Ingress ACL,
// precise vs overapproximate (Tbl. 3). The 10000-entry precise row is
// exercised by `flaybench -only table3 -full` (it is slow by design).
func BenchmarkTable3UpdateScaling(b *testing.B) {
	p := progs.Middleblock()
	for _, mode := range []struct {
		name      string
		threshold int
	}{{"precise", -1}, {"overapprox", controlplane.DefaultOverapproxThreshold}} {
		for _, n := range []int{1, 10, 100, 1000} {
			b.Run(fmt.Sprintf("%s-%d", mode.name, n), func(b *testing.B) {
				s, err := p.LoadWith(core.Options{OverapproxThreshold: mode.threshold})
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]*controlplane.Update, n)
				for i := range batch {
					batch[i] = progs.MiddleblockACLEntry(i)
				}
				if err := s.Preload(batch); err != nil {
					b.Fatal(err)
				}
				// Each op inserts a probe entry and deletes it again, so
				// the installed count stays at n across iterations
				// (ns/op ≈ 2× a single update at size n).
				probe := progs.MiddleblockACLEntry(n)
				unprobe := &controlplane.Update{
					Kind: controlplane.DeleteEntry, Table: probe.Table, Entry: probe.Entry,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if d := s.Apply(probe); d.Kind == core.Rejected {
						b.Fatal(d.Err)
					}
					if d := s.Apply(unprobe); d.Kind == core.Rejected {
						b.Fatal(d.Err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3Evolution replays the five Fig. 3 updates (four
// recompiles + one forward) including the specialized-program rebuilds.
func BenchmarkFig3Evolution(b *testing.B) {
	p := progs.Fig3()
	for i := 0; i < b.N; i++ {
		pipe, err := goflay.Open(p.Name, p.Source)
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range progs.Fig3Updates() {
			if d := pipe.Apply(u); d.Kind == goflay.Rejected {
				b.Fatal(d.Err)
			}
		}
		if pipe.Statistics().Forwarded != 1 {
			b.Fatal("fig3 shape broken")
		}
	}
}

// BenchmarkFig5Query measures one constant-propagation specialization
// query: substituting a one-entry assignment into the egress_port
// annotation (Fig. 5b block C).
func BenchmarkFig5Query(b *testing.B) {
	p := progs.Fig5()
	prog, err := parser.Parse(p.Name, p.Source)
	if err != nil {
		b.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	an, err := dataplane.Analyze(prog, info, dataplane.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := controlplane.NewConfig(an)
	if err := cfg.Apply(progs.Fig5Entry()); err != nil {
		b.Fatal(err)
	}
	egress := an.Final["std.egress_port"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, _, err := cfg.CompileEnv(an.Builder)
		if err != nil {
			b.Fatal(err)
		}
		if got := an.Builder.Subst(egress, env); got.IsConst() {
			b.Fatal("one-entry config must stay symbolic")
		}
	}
}

// BenchmarkScionSpecialize measures producing + compiling the
// specialized SCION program under the representative configuration
// (the §4.2 stage-savings experiment).
func BenchmarkScionSpecialize(b *testing.B) {
	p := progs.Scion()
	s, err := p.Load()
	if err != nil {
		b.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		b.Fatal(err)
	}
	comp := devcompiler.New(devcompiler.TargetTofino)
	var stages int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := comp.Compile(s.SpecializedProgram())
		if err != nil {
			b.Fatal(err)
		}
		stages = res.Allocation.StagesUsed
	}
	b.ReportMetric(float64(stages), "stages")
	b.ReportMetric(float64(comp.Device.Stages), "max-stages")
}

// BenchmarkBurst1000 is the §4.2 burst: 1000 unique IPv4 entries
// against the configured SCION program; reports mean per-update
// decision time and the forward rate.
func BenchmarkBurst1000(b *testing.B) {
	p := progs.Scion()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := p.Load()
		if err != nil {
			b.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		t0 := time.Now()
		forwarded := 0
		for j := 0; j < 1000; j++ {
			if s.Apply(progs.ScionBurstEntry(j)).Kind == core.Forward {
				forwarded++
			}
		}
		b.ReportMetric(float64(time.Since(t0).Microseconds())/1000, "µs/update")
		b.ReportMetric(float64(forwarded), "forwarded")
	}
}

// BenchmarkBatchApplyParallel compares the sequential per-update engine
// against the coalescing batch engine on the §4.2 SCION burst: 1000
// unique IPv4 entries as one ApplyBatch call (one coalesced evaluation
// pass over the union of tainted points, fanned out over the worker
// pool) vs 1000 Apply calls. The batched row should beat sequential by
// well over 2× — the win is algorithmic (1 evaluation pass instead of
// 1000), so it shows even on a single core.
func BenchmarkBatchApplyParallel(b *testing.B) {
	p := progs.Scion()
	load := func(b *testing.B, workers int) *core.Specializer {
		s, err := p.LoadWith(core.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			b.Fatal(err)
		}
		return s
	}
	batch := make([]*controlplane.Update, 1000)
	for j := range batch {
		batch[j] = progs.ScionBurstEntry(j)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := load(b, 1)
			b.StartTimer()
			t0 := time.Now()
			for _, u := range batch {
				if s.Apply(u).Kind == core.Rejected {
					b.Fatal("update rejected")
				}
			}
			b.ReportMetric(float64(time.Since(t0).Microseconds())/1000, "µs/update")
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := load(b, 0) // worker pool at GOMAXPROCS
			b.StartTimer()
			t0 := time.Now()
			for _, d := range s.ApplyBatch(batch) {
				if d.Kind == core.Rejected {
					b.Fatal("update rejected")
				}
			}
			b.ReportMetric(float64(time.Since(t0).Microseconds())/1000, "µs/update")
			b.ReportMetric(float64(s.Statistics().Coalesced), "coalesced")
		}
	})
	// Controller-realistic chunking: the burst arrives as 64-update
	// P4Runtime Write batches.
	b.Run("batched-64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := load(b, 0)
			b.StartTimer()
			t0 := time.Now()
			for start := 0; start < len(batch); start += 64 {
				end := min(start+64, len(batch))
				for _, d := range s.ApplyBatch(batch[start:end]) {
					if d.Kind == core.Rejected {
						b.Fatal("update rejected")
					}
				}
			}
			b.ReportMetric(float64(time.Since(t0).Microseconds())/1000, "µs/update")
		}
	})
}

// BenchmarkFig1TraceGeneration measures control-plane trace generation
// (the Fig. 1 workload model).
func BenchmarkFig1TraceGeneration(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		evs := trace.Generate(time.Hour, trace.Profile{})
		n = len(evs)
	}
	b.ReportMetric(float64(n), "events/h")
}

// BenchmarkSpecializedProgramRebuild measures the pass pipeline alone
// (dead-code elimination, inlining, narrowing) on the configured SCION
// program.
func BenchmarkSpecializedProgramRebuild(b *testing.B) {
	p := progs.Scion()
	s, err := p.Load()
	if err != nil {
		b.Fatal(err)
	}
	if err := p.ApplyRepresentative(s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out *ast.Program
	for i := 0; i < b.N; i++ {
		out = s.SpecializedProgram()
	}
	if out == nil {
		b.Fatal("no program")
	}
}

// BenchmarkAblationIncrementalVsFull compares per-update work with and
// without incrementality on the configured SCION program: taint-routed
// update analysis (Flay) vs re-evaluating every program point (what a
// non-incremental specializer effectively does per update). This is the
// repository's ablation for the paper's core claim.
func BenchmarkAblationIncrementalVsFull(b *testing.B) {
	build := func(b *testing.B) *core.Specializer {
		p := progs.Scion()
		s, err := p.Load()
		if err != nil {
			b.Fatal(err)
		}
		if err := p.ApplyRepresentative(s); err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("incremental", func(b *testing.B) {
		s := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := s.Apply(progs.ScionBurstEntry(100000 + i)); d.Kind == core.Rejected {
				b.Fatal(d.Err)
			}
		}
	})
	b.Run("full-reeval", func(b *testing.B) {
		s := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := s.Apply(progs.ScionBurstEntry(100000 + i)); d.Kind == core.Rejected {
				b.Fatal(d.Err)
			}
			if changed := s.ReevaluateAll(); changed != 0 {
				b.Fatalf("full re-evaluation disagreed with incremental verdicts at %d points", changed)
			}
		}
	})
}

// BenchmarkAblationQuality measures SpecializedProgram rebuild time per
// quality level (paper §6 tradeoff exploration).
func BenchmarkAblationQuality(b *testing.B) {
	p := progs.Scion()
	for _, q := range []core.Quality{core.QualityFull, core.QualityNoNarrowing, core.QualityDCEOnly, core.QualityNone} {
		b.Run(q.String(), func(b *testing.B) {
			s, err := p.LoadWith(core.Options{Quality: q})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.ApplyRepresentative(s); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.SpecializedProgram()
			}
		})
	}
}
